"""GF(2) linear algebra: correctness of the RSS key solver's foundation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.solver import gf2


def random_matrix(rows: int, cols: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(rows, cols), dtype=np.uint8)


class TestRref:
    def test_identity_is_fixed_point(self):
        eye = np.eye(4, dtype=np.uint8)
        reduced, pivots = gf2.rref(eye)
        assert np.array_equal(reduced, eye)
        assert pivots == [0, 1, 2, 3]

    def test_dependent_rows_eliminated(self):
        matrix = np.array([[1, 1, 0], [1, 1, 0]], dtype=np.uint8)
        _, pivots = gf2.rref(matrix)
        assert len(pivots) == 1

    def test_pivot_columns_are_unit(self):
        matrix = random_matrix(6, 10, seed=3)
        reduced, pivots = gf2.rref(matrix)
        for row_index, col in enumerate(pivots):
            column = reduced[:, col]
            assert column[row_index] == 1
            assert column.sum() == 1

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            gf2.rref(np.zeros(4, dtype=np.uint8))


class TestRank:
    def test_zero_matrix(self):
        assert gf2.rank(np.zeros((3, 5), dtype=np.uint8)) == 0

    def test_full_rank(self):
        assert gf2.rank(np.eye(5, dtype=np.uint8)) == 5

    @given(st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_rank_bounded(self, seed):
        matrix = random_matrix(8, 12, seed)
        assert 0 <= gf2.rank(matrix) <= 8


class TestNullspace:
    @given(st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_basis_vectors_satisfy_system(self, seed):
        matrix = random_matrix(7, 15, seed)
        basis = gf2.nullspace(matrix)
        for vector in basis:
            assert not ((matrix @ vector) & 1).any()

    @given(st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_dimension_theorem(self, seed):
        matrix = random_matrix(6, 11, seed)
        assert gf2.nullspace(matrix).shape[0] == 11 - gf2.rank(matrix)

    def test_empty_system_gives_identity(self):
        basis = gf2.nullspace(np.zeros((0, 4), dtype=np.uint8))
        assert np.array_equal(basis, np.eye(4, dtype=np.uint8))

    def test_basis_is_independent(self):
        matrix = random_matrix(5, 12, seed=9)
        basis = gf2.nullspace(matrix)
        assert gf2.rank(basis) == basis.shape[0]


class TestSolve:
    @given(st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_solution_satisfies_system(self, seed):
        matrix = random_matrix(6, 10, seed)
        rng = np.random.default_rng(seed + 1)
        x_true = rng.integers(0, 2, size=10, dtype=np.uint8)
        rhs = (matrix @ x_true) & 1
        solution = gf2.solve(matrix, rhs)
        assert solution is not None
        assert np.array_equal((matrix @ solution) & 1, rhs)

    def test_inconsistent_returns_none(self):
        matrix = np.array([[1, 0], [1, 0]], dtype=np.uint8)
        rhs = np.array([0, 1], dtype=np.uint8)
        assert gf2.solve(matrix, rhs) is None

    def test_rhs_shape_checked(self):
        with pytest.raises(ValueError):
            gf2.solve(np.eye(3, dtype=np.uint8), np.zeros(2, dtype=np.uint8))


class TestRandomSolution:
    @given(st.integers(0, 60))
    @settings(max_examples=20, deadline=None)
    def test_random_solution_in_nullspace(self, seed):
        matrix = random_matrix(5, 14, seed)
        rng = np.random.default_rng(seed)
        solution = gf2.random_solution(matrix, rng)
        assert not ((matrix @ solution) & 1).any()

    def test_bias_produces_dense_solutions(self):
        matrix = np.zeros((0, 64), dtype=np.uint8)
        rng = np.random.default_rng(5)
        dense = gf2.random_solution(matrix, rng, one_bias=0.95)
        assert dense.sum() > 40


class TestSpan:
    def test_member(self):
        matrix = np.array([[1, 0, 1], [0, 1, 1]], dtype=np.uint8)
        assert gf2.is_in_span(matrix, np.array([1, 1, 0], dtype=np.uint8))

    def test_non_member(self):
        matrix = np.array([[1, 0, 0]], dtype=np.uint8)
        assert not gf2.is_in_span(matrix, np.array([0, 1, 0], dtype=np.uint8))
