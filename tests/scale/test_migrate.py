"""Live state migration: the bucket index, the plan, the handoff."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.nf.nfs import ALL_NFS
from repro.rs3.indirection import IndirectionTable
from repro.scale import (
    BucketIndex,
    enable_elastic,
    plan_rescale,
    rescale_parallel,
)
from repro.scale.migrate import extract_bucket, install_bucket


def elastic_parallel(analyses, name="fw", cores=4):
    parallel = analyses.maestro.parallelize(
        ALL_NFS[name](), n_cores=cores, result=analyses[name]
    )
    return enable_elastic(parallel)


def drive(parallel, generator, n_packets=300, n_flows=48, in_port=0):
    trace, _ = generator.uniform_trace(n_packets, n_flows, in_port=in_port)
    for port, pkt in trace:
        parallel.process(port, pkt)
    return trace


class TestBucketIndex:
    def test_tagging_and_queries(self):
        index = BucketIndex()
        index.note_key("m", (1, 2), 7)
        index.note_key("m", (3, 4), 7)
        index.note_key("m", (5, 6), 9)
        index.note_index("c", 0, 7)
        assert index.keys_in("m", 7) == [(1, 2), (3, 4)]
        assert index.indices_in("c", 7) == [0]
        assert index.bucket_of_key("m", (5, 6)) == 9
        assert index.entry_count() == 4
        index.drop_key("m", (1, 2))
        index.drop_index("c", 0)
        assert index.keys_in("m", 7) == [(3, 4)]
        assert index.entry_count() == 2

    def test_retag_overwrites(self):
        index = BucketIndex()
        index.note_key("m", (1,), 3)
        index.note_key("m", (1,), 5)
        assert index.bucket_of_key("m", (1,)) == 5
        assert index.keys_in("m", 3) == []

    def test_runtime_tags_created_state(self, analyses, generator):
        parallel = elastic_parallel(analyses, "fw")
        drive(parallel, generator, n_packets=200)
        total = sum(
            core.ctx.bucket_index.entry_count() for core in parallel.cores
        )
        assert total > 0
        # Every tagged bucket must belong to the core that owns it in
        # the table — tagging follows steering.
        table = parallel.rss.port_config(0).table
        for core in parallel.cores:
            bindex = core.ctx.bucket_index
            for obj in list(bindex._keys):
                for key, bucket in bindex._keys[obj].items():
                    assert int(table.entries[bucket]) == core.core_id


class TestPlanRescale:
    def test_noop_plan_moves_nothing(self):
        table = IndirectionTable(n_queues=4)
        entries, moves = plan_rescale(table, 4)
        assert moves == []
        assert np.array_equal(entries, table.entries)

    def test_grow_only_moves_surplus(self):
        table = IndirectionTable(n_queues=4)
        entries, moves = plan_rescale(table, 8)
        # 512/8 = 64 per core; each old core donates half its slots.
        counts = np.bincount(entries, minlength=8)
        assert counts.tolist() == [64] * 8
        assert len(moves) == 256
        # Surviving cores never receive (minimal moves).
        for slot, src, dst in moves:
            assert src < 4 <= dst

    def test_shrink_retires_high_cores(self):
        table = IndirectionTable(n_queues=8)
        entries, moves = plan_rescale(table, 3)
        counts = np.bincount(entries, minlength=3)
        assert counts.sum() == table.size
        assert max(counts) - min(counts) <= 1
        assert all(src >= 3 or src < 3 for slot, src, dst in moves)
        assert all(dst < 3 for slot, src, dst in moves)

    def test_deterministic(self):
        a = plan_rescale(IndirectionTable(n_queues=4), 7)
        b = plan_rescale(IndirectionTable(n_queues=4), 7)
        assert np.array_equal(a[0], b[0])
        assert a[1] == b[1]

    def test_rejects_nonpositive(self):
        with pytest.raises(SimulationError):
            plan_rescale(IndirectionTable(n_queues=4), 0)


class TestExtractInstall:
    def test_roundtrip_preserves_entries(self, analyses, generator):
        parallel = elastic_parallel(analyses, "fw")
        drive(parallel, generator)
        decls = parallel.nf.state()
        donor = parallel.cores[0]
        buckets = {
            b
            for obj in donor.ctx.bucket_index._keys.values()
            for b in obj.values()
        }
        assert buckets, "driver created no tagged state on core 0"
        bucket = sorted(buckets)[0]
        before = donor.ctx.bucket_index.entry_count()
        delta = extract_bucket(donor, bucket, decls)
        assert delta.n_entries > 0
        assert donor.ctx.bucket_index.entry_count() < before
        # Donor no longer holds the moved keys.
        for name, pairs in delta.maps.items():
            for key, _value in pairs:
                found, _ = donor.ctx.store[name].get(key)
                assert not found
        receiver = parallel.cores[1]
        keyed, installed, refused, refused_keys = install_bucket(
            receiver, delta, decls
        )
        assert refused == 0 and refused_keys == []
        assert installed == delta.n_entries
        # Receiver now resolves every moved map key.
        for name, pairs in delta.maps.items():
            for key, _value in pairs:
                found, _ = receiver.ctx.store[name].get(key)
                assert found
        assert {k for k, _ in delta.maps.get(name, [])} <= {
            key for obj, key in keyed if obj == name
        }

    def test_extract_without_index_raises(self, analyses):
        parallel = analyses.maestro.parallelize(
            ALL_NFS["fw"](), n_cores=4, result=analyses["fw"]
        )
        with pytest.raises(SimulationError):
            extract_bucket(parallel.cores[0], 0, parallel.nf.state())


class TestRescaleParallel:
    def test_requires_elastic_mode(self, analyses):
        parallel = analyses.maestro.parallelize(
            ALL_NFS["fw"](), n_cores=4, result=analyses["fw"]
        )
        with pytest.raises(SimulationError, match="elastic"):
            rescale_parallel(parallel, 8)

    def test_requires_shared_nothing(self, analyses):
        parallel = analyses.maestro.parallelize(
            ALL_NFS["lb"](), n_cores=4, result=analyses["lb"]
        )
        with pytest.raises(SimulationError, match="shared-nothing"):
            enable_elastic(parallel)

    def test_grow_preserves_established_flows(self, analyses, generator):
        parallel = elastic_parallel(analyses, "fw")
        trace = drive(parallel, generator)
        stats = rescale_parallel(parallel, 8)
        assert stats.action == "grow"
        assert stats.n_cores_after == 8
        assert stats.entries_moved > 0
        assert stats.refused == 0
        assert len(parallel.cores) == 8
        assert parallel.active_cores == 8
        # Established LAN flows must still pass WAN-side after moving.
        from repro.nf.api import ActionKind

        for port, pkt in trace[:40]:
            _core, result = parallel.process(1, pkt.inverted())
            assert result.kind is ActionKind.FORWARD

    def test_shrink_consolidates_state(self, analyses, generator):
        parallel = elastic_parallel(analyses, "fw")
        drive(parallel, generator)
        rescale_parallel(parallel, 8)
        stats = rescale_parallel(parallel, 2)
        assert stats.action == "shrink"
        assert parallel.active_cores == 2
        # Retired cores hold no tagged state after full extraction.
        for core in parallel.cores[2:]:
            assert core.ctx.bucket_index.entry_count() == 0
        # The table steers only to survivors.
        table = parallel.rss.port_config(0).table
        assert int(table.entries.max()) <= 1

    def test_noop_rescale_is_free(self, analyses, generator):
        parallel = elastic_parallel(analyses, "fw")
        drive(parallel, generator)
        gen_before = parallel.rss.steering_generation
        stats = rescale_parallel(parallel, 4)
        assert stats.action == "hold"
        assert stats.buckets_moved == 0
        assert stats.entries_moved == 0
        assert parallel.rss.steering_generation == gen_before

    def test_single_generation_bump_per_table(self, analyses, generator):
        parallel = elastic_parallel(analyses, "fw")
        drive(parallel, generator)
        tables = [c.table for c in parallel.rss.ports.values()]
        before = [t.generation for t in tables]
        rescale_parallel(parallel, 8)
        after = [t.generation for t in tables]
        assert [a - b for a, b in zip(after, before)] == [1] * len(tables)

    def test_quiesce_cost_model(self, analyses, generator):
        from repro.scale.migrate import (
            MIGRATE_US_PER_ENTRY,
            QUIESCE_US_PER_BUCKET,
        )

        parallel = elastic_parallel(analyses, "fw")
        drive(parallel, generator)
        stats = rescale_parallel(parallel, 8)
        assert stats.quiesce_us == pytest.approx(
            stats.buckets_moved * QUIESCE_US_PER_BUCKET
            + stats.entries_moved * MIGRATE_US_PER_ENTRY
        )

    def test_regrow_reuses_retired_cores(self, analyses, generator):
        parallel = elastic_parallel(analyses, "fw")
        drive(parallel, generator)
        rescale_parallel(parallel, 8)
        rescale_parallel(parallel, 3)
        n_cores_listed = len(parallel.cores)
        rescale_parallel(parallel, 6)
        assert len(parallel.cores) == n_cores_listed  # high-water reuse
        assert parallel.active_cores == 6

    def test_emits_obs_counters(self, analyses, generator):
        from repro import obs

        parallel = elastic_parallel(analyses, "fw")
        drive(parallel, generator)
        mem = obs.MemoryCollector()
        with obs.attached(mem):
            rescale_parallel(parallel, 8)
        counters = {name for name, _attrs, _total in mem.counters()}
        assert "scale.events" in counters
        assert "scale.migrated_entries" in counters
        assert "scale.quiesce_us" in counters
