"""The elastic controller: utilization band + skew override + cooldown."""

import pytest

from repro.errors import SimulationError
from repro.obs.telemetry import TelemetrySink
from repro.scale import ElasticController


def sink_with(rows):
    """A sink holding one window per entry of ``rows`` (packets only)."""
    sink = TelemetrySink(window_packets=1024)
    for per_core in rows:
        sink.record_window([[p] for p in per_core])
    return sink


class TestValidation:
    def test_rejects_bad_core_bounds(self):
        with pytest.raises(SimulationError, match="core bounds"):
            ElasticController(min_cores=0)
        with pytest.raises(SimulationError, match="core bounds"):
            ElasticController(min_cores=8, max_cores=4)

    def test_rejects_inverted_band(self):
        with pytest.raises(SimulationError, match="shrink_util"):
            ElasticController(grow_util=0.4, shrink_util=0.6)


class TestBandPolicy:
    def test_no_windows_holds(self):
        ctl = ElasticController()
        decision = ctl.decide(TelemetrySink(), active_cores=4)
        assert decision.action == "hold"
        assert decision.n_cores == 4

    def test_hot_fleet_grows(self):
        # 4 cores, all at budget: utilization 1.0 >= 0.8.
        ctl = ElasticController(core_budget_pps=1000)
        decision = ctl.decide(sink_with([[1000] * 4]), active_cores=4)
        assert decision.action == "grow"
        assert decision.n_cores == 8
        assert decision.utilization == pytest.approx(1.0)

    def test_grow_respects_max_cores(self):
        ctl = ElasticController(core_budget_pps=1000, max_cores=6)
        decision = ctl.decide(sink_with([[1000] * 4]), active_cores=4)
        assert decision.action == "grow"
        assert decision.n_cores == 6

    def test_at_max_cores_holds(self):
        ctl = ElasticController(core_budget_pps=1000, max_cores=4)
        decision = ctl.decide(sink_with([[1000] * 4]), active_cores=4)
        assert decision.action == "hold"

    def test_idle_fleet_shrinks(self):
        # 8 cores at 10% utilization: shrink, at most halving.
        ctl = ElasticController(core_budget_pps=1000)
        decision = ctl.decide(sink_with([[100] * 8]), active_cores=8)
        assert decision.action == "shrink"
        assert decision.n_cores == 4

    def test_shrink_respects_min_cores(self):
        ctl = ElasticController(core_budget_pps=1000, min_cores=3)
        decision = ctl.decide(sink_with([[10] * 4]), active_cores=4)
        assert decision.action == "shrink"
        assert decision.n_cores == 3

    def test_within_band_holds(self):
        ctl = ElasticController(core_budget_pps=1000)
        decision = ctl.decide(sink_with([[600] * 4]), active_cores=4)
        assert decision.action == "hold"
        assert decision.reason == "within band"

    def test_skew_override_grows_non_idle_fleet(self):
        # One hot core, modest average utilization: skew forces a grow.
        ctl = ElasticController(core_budget_pps=1000, skew_threshold=1.5)
        rows = [[2000, 100, 100, 100]] * 3
        decision = ctl.decide(sink_with(rows), active_cores=4)
        assert decision.action == "grow"
        assert decision.imbalance > 1.5
        assert "imbalance" in decision.reason

    def test_skew_blocks_shrink(self):
        # Idle on average but skewed: shrinking would worsen the hot core.
        ctl = ElasticController(core_budget_pps=1000, skew_threshold=1.2)
        decision = ctl.decide(sink_with([[800, 10, 10, 10]]), active_cores=4)
        assert decision.action != "shrink"


class TestCooldown:
    def test_cooldown_holds_after_rescale(self):
        ctl = ElasticController(core_budget_pps=1000, cooldown_windows=2)
        sink = sink_with([[1000] * 4])
        first = ctl.decide(sink, active_cores=4)
        assert first.action == "grow"
        sink.record_window([[1000]] * 4)
        second = ctl.decide(sink, active_cores=8)
        assert second.action == "hold"
        assert "cooldown" in second.reason
        sink.record_window([[1000]] * 4)
        third = ctl.decide(sink, active_cores=8)
        assert third.action == "hold"
        sink.record_window([[2000]] * 8)
        fourth = ctl.decide(sink, active_cores=8)
        assert fourth.action == "grow"

    def test_decisions_are_deterministic(self):
        rows = [[900, 700, 1100, 800], [1000, 950, 1050, 990]]
        a = ElasticController(core_budget_pps=1000)
        b = ElasticController(core_budget_pps=1000)
        for _ in range(3):
            assert a.decide(sink_with(rows), 4) == b.decide(sink_with(rows), 4)
