"""``python -m repro.scale verify`` — the CI rescale gate."""

import json

import pytest

from repro.analysis.diagnostics import SCHEMA_VERSION
from repro.scale.__main__ import main, verify_nf


class TestVerifyNF:
    def test_shared_nothing_nf_is_clean(self, analyses):
        verification = verify_nf(
            "fw", packets=450, n_flows=48, result=analyses["fw"]
        )
        assert verification.status == "clean"
        assert verification.parity_ok is True
        assert verification.equivalent is True
        assert verification.mae103 == 0
        assert verification.mae105 == 0
        assert len(verification.rescales) == 2
        assert [r["action"] for r in verification.rescales] == [
            "grow",
            "shrink",
        ]
        assert "clean" in verification.describe()

    def test_locks_nf_is_skipped(self, analyses):
        verification = verify_nf("lb", result=analyses["lb"])
        assert verification.status == "skipped"
        assert verification.clean  # skips never fail the gate
        assert "shared-nothing" in verification.detail

    def test_policer_uses_wan_traffic(self, analyses):
        verification = verify_nf(
            "policer", packets=450, n_flows=48, result=analyses["policer"]
        )
        assert verification.status == "clean"


class TestCLI:
    def test_verify_single_nf_exit_zero(self, capsys):
        code = main(["verify", "fw", "--packets", "450", "--flows", "48"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[fw] clean" in out
        assert "1 NF(s) verified" in out

    def test_unknown_nf_exit_two(self, capsys):
        code = main(["verify", "nosuchnf"])
        assert code == 2
        assert "unknown NF" in capsys.readouterr().err

    def test_no_selection_exit_two(self, capsys):
        code = main(["verify"])
        assert code == 2
        assert "--all" in capsys.readouterr().err

    def test_json_report_schema(self, capsys, tmp_path):
        out_path = tmp_path / "rescale-report.json"
        code = main(
            [
                "verify",
                "fw",
                "--packets",
                "450",
                "--flows",
                "48",
                "--json",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == json.loads(out_path.read_text())
        assert payload["schema"] == SCHEMA_VERSION
        (report,) = payload["reports"]
        assert report["nf"] == "fw"
        assert report["status"] == "clean"
        assert report["parity_ok"] is True
        assert report["mae103"] == 0 and report["mae105"] == 0
        assert [r["action"] for r in report["rescales"]] == ["grow", "shrink"]
        assert all(len(event) == 2 for event in report["events"])

    def test_skipped_nf_does_not_fail_gate(self, capsys):
        code = main(["verify", "lb"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[lb] skipped" in out
        assert "0 NF(s) verified (1 skipped)" in out

    def test_seed_changes_trace_but_stays_clean(self, capsys):
        code = main(
            ["verify", "fw", "--packets", "300", "--flows", "32",
             "--seed", "777", "--grow-to", "6", "--shrink-to", "2"]
        )
        assert code == 0
