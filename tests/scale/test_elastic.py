"""Elastic execution: mid-trace rescales stay equivalent and sanitized.

The acceptance property of the elastic-scaling work: a seeded churn
trace with at least one grow and one shrink mid-trace is bit-identical
to the sequential reference, and the race sanitizer reports zero MAE103
(ownership) and zero MAE105 (unowned-epoch) findings — while a
deliberately torn handoff *does* raise MAE105.
"""

import pytest

from repro.analysis.race import RaceMonitor, analyze_monitor
from repro.errors import SimulationError
from repro.nf.nfs import ALL_NFS
from repro.scale import RescaleEvent, enable_elastic, run_elastic
from repro.scale.migrate import rescale_parallel
from repro.sim.equivalence import check_equivalence
from repro.traffic.churn import churn_trace
from repro.traffic.generator import TrafficGenerator


def make_elastic(analyses, name="fw", cores=4):
    parallel = analyses.maestro.parallelize(
        ALL_NFS[name](), n_cores=cores, result=analyses[name]
    )
    return enable_elastic(parallel)


def seeded_churn(n_packets=600, n_flows=64, in_port=0, seed=7):
    return churn_trace(
        TrafficGenerator(seed=seed), n_packets, n_flows, 60_000.0,
        in_port=in_port,
    )


GROW_SHRINK = [RescaleEvent(200, 8), RescaleEvent(400, 3)]


class TestEquivalenceAcrossRescale:
    @pytest.mark.parametrize(
        "name,in_port,ignore",
        [
            ("fw", 0, ()),
            ("policer", 1, ()),
            ("psd", 0, ()),
            ("cl", 0, ()),
            ("nat", 0, ("src_port",)),
        ],
    )
    def test_grow_and_shrink_stay_equivalent(
        self, analyses, name, in_port, ignore
    ):
        parallel = make_elastic(analyses, name)
        trace = seeded_churn(in_port=in_port)
        report = check_equivalence(
            ALL_NFS[name],
            parallel,
            trace,
            ignore_mods=ignore,
            sanitize=True,
            tree=analyses[name].tree,
            rescale_events=[(200, 8), (400, 3)],
        )
        assert report.equivalent, report.describe()
        codes = [d.code for d in report.race_diagnostics]
        assert "MAE103" not in codes, report.describe()
        assert "MAE105" not in codes, report.describe()


class TestBatchParity:
    def test_fastpath_and_compiled_match_reference(self, analyses):
        trace = seeded_churn()
        runs = []
        for fastpath, kernels in ((False, False), (True, False), (True, True)):
            parallel = make_elastic(analyses, "fw")
            out = run_elastic(
                parallel, trace, GROW_SHRINK,
                fastpath=fastpath, kernels=kernels,
            )
            runs.append(list(out.results))
        assert runs[0] == runs[1], "fastpath diverged across rescale"
        assert runs[0] == runs[2], "compiled kernels diverged across rescale"

    def test_rescale_stats_reported_per_event(self, analyses):
        parallel = make_elastic(analyses, "fw")
        out = run_elastic(parallel, seeded_churn(), GROW_SHRINK)
        assert [s.action for s in out.rescales] == ["grow", "shrink"]
        assert out.rescales[0].n_cores_after == 8
        assert out.rescales[1].n_cores_after == 3
        assert len(out.results) == 600

    def test_event_bounds_checked(self, analyses):
        parallel = make_elastic(analyses, "fw")
        with pytest.raises(SimulationError, match="outside"):
            run_elastic(parallel, seeded_churn(), [RescaleEvent(601, 8)])
        with pytest.raises(SimulationError, match="two rescale"):
            run_elastic(
                parallel,
                seeded_churn(),
                [RescaleEvent(100, 8), RescaleEvent(100, 3)],
            )


class TestTornHandoff:
    def test_torn_handoff_raises_mae105(self, analyses):
        """A packet served between extract and install must be caught."""
        parallel = make_elastic(analyses, "fw")
        trace = seeded_churn()
        with RaceMonitor(parallel) as monitor:
            for port, pkt in trace[:200]:
                parallel.process(port, pkt)

            served = []
            config = parallel.rss.port_config(0)
            mask = config.table.size - 1

            def torn(slot, src, dst):
                # Serve one packet steered by the migrating bucket,
                # *inside* its unowned epoch.
                if served:
                    return
                for port, pkt in trace[200:]:
                    if config.hash(pkt) & mask == slot:
                        parallel.process(port, pkt)
                        served.append(slot)
                        return

            rescale_parallel(parallel, 8, torn_hook=torn)
            assert served, "no trace packet hit any migrating bucket"
            for port, pkt in trace[200:]:
                parallel.process(port, pkt)
        report = analyze_monitor(monitor, tree=analyses["fw"].tree)
        codes = [d.code for d in report.diagnostics]
        assert "MAE105" in codes, report.describe()

    def test_clean_handoff_has_no_mae105(self, analyses):
        parallel = make_elastic(analyses, "fw")
        trace = seeded_churn()
        with RaceMonitor(parallel) as monitor:
            for port, pkt in trace[:200]:
                parallel.process(port, pkt)
            rescale_parallel(parallel, 8)
            for port, pkt in trace[200:]:
                parallel.process(port, pkt)
        report = analyze_monitor(monitor, tree=analyses["fw"].tree)
        codes = [d.code for d in report.diagnostics]
        assert "MAE105" not in codes, report.describe()
        assert "MAE103" not in codes, report.describe()


class TestSteeringInvalidation:
    def test_rescale_bumps_generation_and_flushes_cache(self, analyses):
        from repro.sim.functional import FlowSteeringCache

        parallel = make_elastic(analyses, "fw")
        cache = FlowSteeringCache(parallel.rss)
        trace = seeded_churn(n_packets=120)
        cache.steer(trace)
        assert cache._cores, "warm-up populated nothing"
        gen = parallel.rss.steering_generation
        rescale_parallel(parallel, 8)
        assert parallel.rss.steering_generation > gen
        cache.steer(trace[:10])  # first use after rescale flushes
        stats = cache.stats()
        assert stats["invalidations"] >= 1
