"""The ``rescale`` fuzz workload: live migration under generated NFs.

Satellite of the elastic-scaling PR: the fuzz mutator gained a
``rescale`` workload kind (churn traffic + an oracle-applied mid-trace
grow and shrink), the session can force it campaign-wide, and the CLI
fails loudly when a forced-rescale campaign never actually executed a
rescale check — a silently skipped mutator must not pass as green.
"""

from __future__ import annotations

import json

import pytest

from repro.fuzz.__main__ import main
from repro.fuzz.generator import random_spec
from repro.fuzz.oracle import run_oracle
from repro.fuzz.runner import FuzzSession
from repro.fuzz.workloads import (
    WORKLOAD_KINDS,
    WorkloadSpec,
    materialize_workload,
)

#: pinned in tests/fuzz/test_oracle.py (guarded there): seed 2 draws a
#: shared-nothing verdict, seed 1 a LOCKS one.
SN_SEED = 2
LOCKS_SEED = 1

RESCALE = WorkloadSpec("rescale", 13, n_packets=120, n_flows=24)


class TestWorkloadKind:
    def test_rescale_is_a_known_kind(self):
        assert "rescale" in WORKLOAD_KINDS

    def test_materializes_as_churn(self):
        trace = materialize_workload(RESCALE)
        assert len(trace) == 120
        churn = materialize_workload(
            WorkloadSpec("churn", 13, n_packets=120, n_flows=24)
        )
        assert [(p, pkt.to_bytes()) for p, pkt in trace] == [
            (p, pkt.to_bytes()) for p, pkt in churn
        ]


class TestOracle:
    def test_shared_nothing_case_runs_rescale_check(self):
        spec = random_spec(SN_SEED, shape="small")
        report = run_oracle(spec, [RESCALE], n_cores=4, maestro_seed=7)
        assert report.ok, [f.to_dict() for f in report.failures]
        assert report.rescale_checks > 0
        assert report.to_dict()["rescale_checks"] == report.rescale_checks

    def test_locks_case_has_no_rescale_check(self):
        spec = random_spec(LOCKS_SEED, shape="small")
        report = run_oracle(spec, [RESCALE], n_cores=4, maestro_seed=7)
        assert report.ok, [f.to_dict() for f in report.failures]
        assert report.rescale_checks == 0


class TestSession:
    def test_forced_rescale_campaign_counts_checks(self, tmp_path):
        session = FuzzSession(
            seed=5,
            runs=3,
            shape="small",
            workload_kind="rescale",
            corpus_dir=tmp_path,
            save=False,
            replay=False,
            shrink=False,
        )
        report = session.run()
        assert report.workload_kind == "rescale"
        assert report.rescale_checks > 0
        assert report.to_dict()["rescale_checks"] == report.rescale_checks

    def test_unknown_workload_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown workload kind"):
            FuzzSession(runs=0, workload_kind="nosuchkind").run()


class TestCLI:
    def test_rescale_sweep_green(self, tmp_path, capsys):
        code = main(
            [
                "--seed", "5", "--runs", "3", "--shape", "small",
                "--workload", "rescale", "--no-replay", "--no-save",
                "--no-shrink", "--corpus", str(tmp_path),
                "--json", str(tmp_path / "report.json"),
            ]
        )
        assert code == 0
        payload = json.loads((tmp_path / "report.json").read_text())
        assert payload["workload_kind"] == "rescale"
        assert payload["rescale_checks"] > 0

    def test_zero_rescale_checks_fails_loudly(self, tmp_path, capsys, monkeypatch):
        # Simulate the silently-skipped mutator: a campaign that ran
        # cases but never executed a rescale check.
        import repro.fuzz.runner as runner_mod

        original = runner_mod.FuzzSession._run_case

        def no_rescale(self, report, index):
            original(self, report, index)
            report.rescale_checks = 0

        monkeypatch.setattr(runner_mod.FuzzSession, "_run_case", no_rescale)
        code = main(
            [
                "--seed", "5", "--runs", "2", "--shape", "small",
                "--workload", "rescale", "--no-replay", "--no-save",
                "--no-shrink", "--corpus", str(tmp_path),
            ]
        )
        assert code == 1
        assert "silently skipped" in capsys.readouterr().err
