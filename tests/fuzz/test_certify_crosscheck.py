"""Static certification vs. observed kernel behaviour.

The acceptance campaign: 100 fixed-seed generated NFs must all certify
clean, and a subset must survive the oracle's dynamic cross-check (a
kernel lane executing a path the certifier did not prove lowered is a
finding, and a certificate with lowered paths must yield a dispatcher).
The negative direction is pinned by tampering with the certificate.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.plan_passes import certify_nf
from repro.core.pipeline import Maestro
from repro.fuzz.generator import build_nf, random_spec
from repro.fuzz.oracle import OracleReport, _check_fastpath, run_oracle
from repro.fuzz.workloads import WorkloadSpec, materialize_workload

UNIFORM = WorkloadSpec("uniform", 11, n_packets=64, n_flows=16)

CAMPAIGN_SEEDS = range(100)
DYNAMIC_SEEDS = range(0, 100, 10)


def test_campaign_every_generated_nf_certifies_clean() -> None:
    """Acceptance: 100 fixed-seed specs, zero MAE3xx findings."""
    bad = []
    for seed in CAMPAIGN_SEEDS:
        spec = random_spec(seed, shape="small")
        report = certify_nf(build_nf(spec))
        if not report.clean:
            bad.append((seed, [str(d) for d in report.diagnostics]))
        elif report.n_proved != report.n_supported:
            bad.append((seed, "supported paths left unproved"))
    assert not bad, bad


def test_campaign_dynamic_crosscheck_is_green() -> None:
    """Oracle runs (which now certify statically and cross-check the
    compiled leg's kernel lanes) stay clean on a seed subsample."""
    for seed in DYNAMIC_SEEDS:
        spec = random_spec(seed, shape="small")
        report = run_oracle(spec, [UNIFORM], n_cores=4, maestro_seed=7)
        assert report.ok, (seed, [f.to_dict() for f in report.failures])


def _fastpath_with_certificate(seed, certificate):
    """Drive the oracle's compiled-leg check under a given certificate."""
    spec = random_spec(seed, shape="small")
    result = Maestro(seed=0).analyze(build_nf(spec))
    report = OracleReport(spec=spec)
    from repro.core.codegen import ParallelNF, Strategy
    from repro.core.sharding import Verdict

    strategy = (
        Strategy.SHARED_NOTHING
        if result.solution.verdict is Verdict.SHARED_NOTHING
        else Strategy.LOCKS
    )

    def make_nf():
        return build_nf(spec)

    def make_parallel(strat):
        return ParallelNF.generate(
            build_nf(spec), result.solution,
            result.rss_configuration(4), 4, strategy=strat,
        )

    guard_values = tuple(
        guard.value for group in spec.groups for guard in group.guards
    )
    trace = materialize_workload(
        UNIFORM,
        guard_values=guard_values,
        min_capacity=min(group.capacity for group in spec.groups),
        rss=result.rss_configuration(4),
    )
    _check_fastpath(
        report, make_nf, make_parallel, strategy, UNIFORM, trace,
        result.tree, 4, None, certificate,
    )
    return report


def test_kernel_lane_outside_certificate_is_a_finding() -> None:
    """Tampered certificate claiming nothing is lowered: any observed
    kernel lane must trip the certify-lanes cross-check."""
    seed = 2  # known kernel-heavy spec (full coverage in the oracle test)
    spec = random_spec(seed, shape="small")
    certificate = certify_nf(build_nf(spec))
    assert certificate.supported_pids, "fixture must have lowered paths"
    hollow = dataclasses.replace(certificate, supported_pids=())
    report = _fastpath_with_certificate(seed, hollow)
    assert any(
        f.kind == "certify" and "certify-lanes" in f.codes
        for f in report.failures
    ), [f.to_dict() for f in report.failures]


def test_truthful_certificate_passes_the_same_run() -> None:
    seed = 2
    spec = random_spec(seed, shape="small")
    certificate = certify_nf(build_nf(spec))
    report = _fastpath_with_certificate(seed, certificate)
    assert not [f for f in report.failures if f.kind == "certify"], [
        f.to_dict() for f in report.failures
    ]


def test_certifier_crash_does_not_mask_the_oracle(monkeypatch) -> None:
    """A crashing certifier surfaces as a crash finding instead of
    silently skipping the cross-check."""
    import repro.analysis.plan_passes as plan_passes

    def boom(*args, **kwargs):
        raise RuntimeError("certifier exploded")

    monkeypatch.setattr(plan_passes, "certify_nf", boom)
    spec = random_spec(2, shape="small")
    report = run_oracle(spec, [UNIFORM], n_cores=4, maestro_seed=7)
    assert any(
        f.kind == "crash" and "certifier exploded" in f.detail
        for f in report.failures
    )
