"""Flight-recorder context on fuzz failures, through reproducer files.

Satellite of the telemetry PR: a fault-injected failure must carry a
non-empty last-N-packets flight snapshot, the snapshot must serialize
into the shrunk reproducer JSON, and :attr:`CorpusEntry.flight` must
hand it back untouched after a corpus round-trip.
"""

from __future__ import annotations

import json

from repro.fuzz.corpus import CorpusEntry, load_corpus, save_reproducer
from repro.fuzz.generator import random_spec
from repro.fuzz.oracle import run_oracle
from repro.fuzz.workloads import WorkloadSpec, materialize_workload

LOCKS_SEED = 1  # random_spec(1) builds an NF the analyzer locks

EVENT_KEYS = {
    "index", "port", "core", "action", "out_port",
    "flow_hash", "path_id", "state_ops",
}


def _failing_report_and_trace():
    spec = random_spec(LOCKS_SEED, shape="small")
    trace = materialize_workload(
        WorkloadSpec("uniform", 11, n_packets=24, n_flows=6)
    )
    report = run_oracle(
        spec, [], traces=[(None, trace)], n_cores=4, maestro_seed=7,
        fault="drop-lock",
    )
    assert not report.ok
    return spec, trace, report


def test_fault_injected_failure_carries_flight_snapshot() -> None:
    _, trace, report = _failing_report_and_trace()
    flighted = [f for f in report.failures if f.flight]
    assert flighted, "race/equivalence failures must ship flight context"
    for failure in flighted:
        for event in failure.flight:
            assert EVENT_KEYS <= set(event)
        # the recorder saw the tail of the run, in order
        indices = [e["index"] for e in failure.flight]
        assert indices == sorted(indices)
        assert max(indices) < len(trace)


def test_flight_snapshot_embeds_in_failure_dict() -> None:
    _, _, report = _failing_report_and_trace()
    failure = next(f for f in report.failures if f.flight)
    payload = failure.to_dict()
    assert payload["flight"] == [dict(e) for e in failure.flight]
    json.dumps(payload)  # reproducer-JSON ready


def test_reproducer_round_trips_flight(tmp_path) -> None:
    spec, trace, report = _failing_report_and_trace()
    failure = next(f for f in report.failures if f.flight)
    entry = CorpusEntry(
        name="",
        spec=spec,
        trace=trace,
        signature=failure.signature,
        fault="drop-lock",
        seed=LOCKS_SEED,
        n_cores=4,
        maestro_seed=7,
        failure=failure.to_dict(),
    )
    path = save_reproducer(tmp_path, entry)
    raw = json.loads(path.read_text())
    assert raw["failure"]["flight"], "flight snapshot missing from JSON"
    (loaded,) = load_corpus(tmp_path)
    assert loaded.flight == [dict(e) for e in failure.flight]
    assert loaded.flight  # non-empty after the round-trip


def test_entries_without_failure_have_empty_flight(tmp_path) -> None:
    spec, trace, report = _failing_report_and_trace()
    entry = CorpusEntry(
        name="",
        spec=spec,
        trace=trace,
        signature=report.failures[0].signature,
        fault="drop-lock",
    )
    save_reproducer(tmp_path, entry)
    (loaded,) = load_corpus(tmp_path)
    assert loaded.flight == []
