"""Corpus round-trip, replay semantics, checked-in reproducer, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.fuzz.__main__ import main
from repro.fuzz.corpus import (
    CORPUS_FORMAT,
    CorpusEntry,
    load_corpus,
    replay_corpus,
    save_reproducer,
)
from repro.fuzz.generator import random_spec
from repro.fuzz.oracle import run_oracle
from repro.fuzz.workloads import WorkloadSpec, materialize_workload

CORPUS_DIR = Path(__file__).resolve().parents[1] / "fuzz_corpus"


def _drop_lock_entry() -> CorpusEntry:
    spec = random_spec(1, shape="small")
    trace = materialize_workload(
        WorkloadSpec("uniform", 11, n_packets=8, n_flows=4)
    )
    report = run_oracle(
        spec, [], traces=[(None, trace)], n_cores=4, maestro_seed=7,
        fault="drop-lock",
    )
    return CorpusEntry(
        name="",
        spec=spec,
        trace=trace,
        signature=report.failures[0].signature,
        fault="drop-lock",
        seed=1,
        maestro_seed=7,
    )


def test_save_load_round_trip(tmp_path) -> None:
    entry = _drop_lock_entry()
    path = save_reproducer(tmp_path, entry)
    assert path.exists()
    data = json.loads(path.read_text())
    assert data["format"] == CORPUS_FORMAT
    assert data["pipeline_version"]
    assert "class GeneratedNF" in data["nf_source"]
    (loaded,) = load_corpus(tmp_path)
    assert loaded.spec == entry.spec
    assert loaded.signature == entry.signature
    assert [(p, pkt.to_bytes()) for p, pkt in loaded.trace] == [
        (p, pkt.to_bytes()) for p, pkt in entry.trace
    ]


def test_replay_semantics_fail_and_clean(tmp_path) -> None:
    entry = _drop_lock_entry()
    save_reproducer(tmp_path, entry)
    clean = _drop_lock_entry()
    clean.fault = None  # same case without the seeded bug: stays clean
    clean.expect = "clean"
    clean.name = "clean-variant"
    save_reproducer(tmp_path, clean)
    outcomes = replay_corpus(tmp_path)
    assert len(outcomes) == 2
    assert all(o.ok for o in outcomes), [o.detail for o in outcomes]


def test_fixed_reproducer_stops_failing_when_fault_removed(tmp_path) -> None:
    """expect: "fail" flips red when the bug is gone (silent-fix alarm)."""
    entry = _drop_lock_entry()
    entry.fault = None  # pretend the pipeline bug got fixed
    save_reproducer(tmp_path, entry)
    (outcome,) = replay_corpus(tmp_path)
    assert not outcome.ok
    assert "no longer fails" in outcome.detail


def test_checked_in_corpus_replays_green_as_failing() -> None:
    """The committed reproducer must stay minimal and keep failing."""
    entries = load_corpus(CORPUS_DIR)
    assert entries, "tests/fuzz_corpus must ship at least one reproducer"
    for entry in entries:
        assert entry.spec.n_state_objects() <= 3
        assert len(entry.trace) <= 10
    outcomes = replay_corpus(CORPUS_DIR)
    assert all(o.ok for o in outcomes), [o.detail for o in outcomes]


def test_unknown_corpus_format_rejected(tmp_path) -> None:
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"format": "repro.fuzz/999"}))
    with pytest.raises(ValueError, match="unknown corpus format"):
        load_corpus(tmp_path)


# ------------------------------------------------------------------ #
# CLI
# ------------------------------------------------------------------ #
def test_cli_clean_run_exits_zero(tmp_path, capsys) -> None:
    code = main(
        [
            "--seed", "0", "--runs", "2", "--shape", "small",
            "--corpus", str(tmp_path / "none"), "--no-replay", "--no-save",
        ]
    )
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_cli_fault_run_exits_one_and_writes_json(tmp_path, capsys) -> None:
    out = tmp_path / "report.json"
    code = main(
        [
            "--seed", "1", "--runs", "1", "--shape", "small",
            "--fault", "drop-lock", "--no-replay", "--no-save",
            "--no-shrink", "--json", str(out),
        ]
    )
    assert code == 1
    report = json.loads(out.read_text())
    assert report["clean"] is False
    assert report["failures"]
    assert report["pipeline_version"]


def test_cli_corpus_replay_only(capsys) -> None:
    code = main(["--runs", "0", "--corpus", str(CORPUS_DIR)])
    assert code == 0
    assert "replay [ok]" in capsys.readouterr().out


def test_cli_usage_error_exits_two(capsys) -> None:
    assert main(["--runs", "-3"]) == 2
