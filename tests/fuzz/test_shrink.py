"""Shrinker soundness: every accepted step still fails, result is minimal."""

from __future__ import annotations

from repro.fuzz.generator import random_spec
from repro.fuzz.oracle import run_oracle
from repro.fuzz.shrink import shrink_case
from repro.fuzz.workloads import WorkloadSpec, materialize_workload

FAULT = "drop-lock"
SEED = 1  # LOCKS verdict via keyed state (see test_oracle)


def _failing_case():
    spec = random_spec(SEED, shape="small")
    trace = materialize_workload(
        WorkloadSpec("uniform", 11, n_packets=64, n_flows=16)
    )
    report = run_oracle(
        spec, [], traces=[(None, trace)], n_cores=4, maestro_seed=7, fault=FAULT
    )
    assert not report.ok
    return spec, trace, report.failures[0].signature


def _fails_with(spec, trace, signature) -> bool:
    report = run_oracle(
        spec, [], traces=[(None, trace)], n_cores=4, maestro_seed=7, fault=FAULT
    )
    return any(f.signature == signature for f in report.failures)


def test_seeded_bug_stays_failing_at_every_step() -> None:
    """The satellite gate: replay every accepted intermediate and the
    minimized case — all must still fail with the original signature."""
    spec, trace, signature = _failing_case()
    result = shrink_case(
        spec, trace, signature, fault=FAULT, n_cores=4, maestro_seed=7
    )
    assert result.steps == len(result.history)
    for step_spec, step_trace in result.history:
        assert _fails_with(step_spec, step_trace, signature)
    assert _fails_with(result.spec, result.trace, signature)


def test_minimized_case_meets_acceptance_bounds() -> None:
    spec, trace, signature = _failing_case()
    result = shrink_case(
        spec, trace, signature, fault=FAULT, n_cores=4, maestro_seed=7
    )
    assert result.n_state_objects <= 3
    assert len(result.trace) <= 10
    assert not result.exhausted


def test_shrink_is_no_op_on_clean_case() -> None:
    spec = random_spec(2, shape="small")  # shared-nothing, no fault
    trace = materialize_workload(
        WorkloadSpec("uniform", 11, n_packets=16, n_flows=8)
    )
    result = shrink_case(
        spec, trace, "race/locks/MAE101", n_cores=4, maestro_seed=7,
        max_probes=10,
    )
    assert result.steps == 0
    assert result.spec == spec
    assert len(result.trace) == len(trace)


def test_probe_budget_is_respected() -> None:
    spec, trace, signature = _failing_case()
    result = shrink_case(
        spec, trace, signature, fault=FAULT, n_cores=4, maestro_seed=7,
        max_probes=3,
    )
    assert result.probes <= 3
    assert result.exhausted
