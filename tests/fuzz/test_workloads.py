"""Workload materialization: every traffic model yields a valid trace."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import Maestro
from repro.fuzz.generator import build_nf, random_spec
from repro.fuzz.workloads import (
    WORKLOAD_KINDS,
    WorkloadSpec,
    materialize_workload,
    random_workload,
)
from repro.nf.packet import Packet


@pytest.mark.parametrize("kind", WORKLOAD_KINDS)
def test_every_kind_materializes(kind: str) -> None:
    spec = WorkloadSpec(kind=kind, seed=5, n_packets=64, n_flows=16)
    rss = None
    if kind == "collide":
        result = Maestro(seed=0).analyze(build_nf(random_spec(2, shape="small")))
        rss = result.rss_configuration(4)
    trace = materialize_workload(
        spec, guard_values=(17, 576), min_capacity=32, rss=rss
    )
    assert trace, kind
    for port, pkt in trace:
        assert port in (0, 1)
        assert isinstance(pkt, Packet)


@pytest.mark.parametrize("kind", ["uniform", "zipf", "churn", "boundary"])
def test_materialization_is_deterministic(kind: str) -> None:
    spec = WorkloadSpec(kind=kind, seed=9, n_packets=48, n_flows=12)
    a = materialize_workload(spec, guard_values=(53,))
    b = materialize_workload(spec, guard_values=(53,))
    assert [(p, pkt.to_bytes()) for p, pkt in a] == [
        (p, pkt.to_bytes()) for p, pkt in b
    ]


def test_exhaust_uses_more_flows_than_capacity() -> None:
    spec = WorkloadSpec(kind="exhaust", seed=1, n_packets=256, n_flows=8)
    trace = materialize_workload(spec, min_capacity=16)
    tuples = {
        (p.src_ip, p.dst_ip, p.src_port, p.dst_port) for _, p in trace
    }
    assert len(tuples) > 16


def test_boundary_includes_guard_neighbors() -> None:
    spec = WorkloadSpec(kind="boundary", seed=3, n_packets=256, n_flows=64)
    trace = materialize_workload(spec, guard_values=(8080,))
    ports = {p.src_port for _, p in trace} | {p.dst_port for _, p in trace}
    assert ports & {8079, 8080, 8081}
    assert 0 in ports or 65535 in ports


def test_collide_lands_on_one_core() -> None:
    result = Maestro(seed=0).analyze(build_nf(random_spec(2, shape="small")))
    rss = result.rss_configuration(4)
    spec = WorkloadSpec(kind="collide", seed=2, n_packets=64, n_flows=8)
    trace = materialize_workload(spec, rss=rss)
    cores = {rss.core_for(port, pkt) for port, pkt in trace}
    assert len(cores) == 1


def test_workload_round_trip_and_random_draw() -> None:
    rng = np.random.default_rng(0)
    for _ in range(10):
        spec = random_workload(rng)
        assert spec.kind in WORKLOAD_KINDS
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec
