"""Generator validity: every generated NF is a well-typed pipeline input."""

from __future__ import annotations

import linecache

import pytest

from repro.analysis import lint_nf
from repro.analysis.diagnostics import Severity
from repro.core.pipeline import Maestro
from repro.fuzz.generator import (
    SHAPES,
    NfSpec,
    build_nf,
    random_spec,
    render_source,
    spec_reductions,
)
from repro.nf.api import NF


def test_fifty_seeds_lint_clean() -> None:
    """Satellite gate: zero MAE0xx findings across 50 seeds.

    Not just errors — a generated NF that trips warnings would make
    every fuzz report noisy, so the generator must stay fully clean.
    """
    for seed in range(50):
        nf = build_nf(random_spec(seed, shape="small"))
        diagnostics = lint_nf(nf)
        errors = [d for d in diagnostics if d.severity is Severity.ERROR]
        assert not errors, f"seed {seed}: {errors}"
        assert not diagnostics, f"seed {seed} warns: {diagnostics}"


@pytest.mark.parametrize("shape", sorted(SHAPES))
def test_shapes_produce_analyzable_nfs(shape: str) -> None:
    for seed in (0, 1, 2):
        nf = build_nf(random_spec(seed, shape=shape))
        assert isinstance(nf, NF)
        result = Maestro(seed=0).analyze(nf, lint=True)
        assert result.solution.verdict is not None
        assert not [d for d in result.diagnostics if d.is_error]


def test_spec_is_deterministic_and_round_trips() -> None:
    a = random_spec(7, shape="medium")
    b = random_spec(7, shape="medium")
    assert a == b
    assert render_source(a) == render_source(b)
    assert NfSpec.from_dict(a.to_dict()) == a


def test_generated_source_is_introspectable() -> None:
    """The AST linter needs real source lines behind generated methods."""
    import inspect

    spec = random_spec(3, shape="small")
    nf = build_nf(spec)
    lines, _ = inspect.getsourcelines(type(nf).process)
    assert "def process" in "".join(lines)
    filename = type(nf).process.__code__.co_filename
    assert filename.startswith("<repro.fuzz ")
    assert linecache.getlines(filename)


def test_reductions_shrink_monotonically() -> None:
    spec = random_spec(11, shape="large")
    for candidate in spec_reductions(spec):
        assert candidate != spec
        assert candidate.n_state_objects() <= spec.n_state_objects()
        # every reduction must itself build and run
        build_nf(candidate)


def test_state_names_are_unique_per_spec() -> None:
    for seed in range(20):
        spec = random_spec(seed, shape="large")
        names = spec.state_names()
        assert len(names) == len(set(names))
