"""Differential oracle: clean pipeline passes, seeded bugs are caught."""

from __future__ import annotations

import pytest

from repro.core.pipeline import Maestro
from repro.fuzz.generator import build_nf, random_spec
from repro.fuzz.oracle import run_oracle
from repro.fuzz.workloads import WorkloadSpec

UNIFORM = WorkloadSpec("uniform", 11, n_packets=64, n_flows=16)


def _verdict(seed: int) -> str:
    spec = random_spec(seed, shape="small")
    return Maestro(seed=0).analyze(build_nf(spec)).solution.verdict.value


#: seed 1 is LOCKS via keyed state (two src_mac flow tables); seed 2 is
#: shared-nothing.  Guarded by assertions so a generator change that
#: reshuffles seeds fails loudly instead of silently testing nothing.
LOCKS_SEED = 1
SN_SEED = 2


def test_seed_assumptions_hold() -> None:
    assert _verdict(LOCKS_SEED) == "locks"
    assert _verdict(SN_SEED) == "shared-nothing"


def test_clean_pipeline_passes_all_strategies() -> None:
    spec = random_spec(SN_SEED, shape="small")
    report = run_oracle(spec, [UNIFORM], n_cores=4, maestro_seed=7)
    assert report.ok, [f.to_dict() for f in report.failures]
    assert set(report.strategies) == {"shared-nothing", "locks", "tm"}
    assert report.checks > 0
    assert report.cache_stats is not None
    assert report.cache_stats["warm"]["hits"] >= report.cache_stats["cold"]["hits"]


def test_locks_verdict_skips_shared_nothing() -> None:
    spec = random_spec(LOCKS_SEED, shape="small")
    report = run_oracle(spec, [UNIFORM], n_cores=4, maestro_seed=7)
    assert report.ok, [f.to_dict() for f in report.failures]
    assert "shared-nothing" not in report.strategies


def test_drop_lock_fault_raises_mae101() -> None:
    spec = random_spec(LOCKS_SEED, shape="small")
    report = run_oracle(
        spec, [UNIFORM], n_cores=4, maestro_seed=7, fault="drop-lock"
    )
    assert not report.ok
    assert any(
        f.kind == "race" and "MAE101" in f.codes for f in report.failures
    )


def test_forged_shared_nothing_verdict_is_refuted() -> None:
    """The static-vs-dynamic cross-check: a forged sharding verdict must
    be caught by the race sanitizer (MAE103 shard ownership)."""
    spec = random_spec(LOCKS_SEED, shape="small")
    report = run_oracle(
        spec, [UNIFORM], n_cores=4, maestro_seed=7, fault="forge-shared-nothing"
    )
    assert "shared-nothing" in report.strategies
    assert any(
        f.strategy == "shared-nothing" and "MAE103" in f.codes
        for f in report.failures
    )


def test_stale_cache_fault_diverges_warm_path() -> None:
    spec = random_spec(SN_SEED, shape="small")
    report = run_oracle(
        spec, [UNIFORM], n_cores=4, maestro_seed=7, fault="stale-cache"
    )
    warm = [f for f in report.failures if f.kind == "fastpath"]
    assert warm
    assert all("warm" in f.detail for f in warm)


def test_clean_pipeline_reports_compiled_stats() -> None:
    """The fourth oracle leg runs the compiled dataplane and attaches
    its kernel-coverage accounting to the report."""
    spec = random_spec(SN_SEED, shape="small")
    report = run_oracle(spec, [UNIFORM], n_cores=4, maestro_seed=7)
    assert report.ok, [f.to_dict() for f in report.failures]
    assert report.compiled_stats is not None
    assert 0.0 <= report.compiled_stats["coverage"] <= 1.0


def test_skew_kernel_fault_diverges_compiled_leg() -> None:
    """A corrupted scatter mask flips one kernel lane's action; the
    compiled leg must catch it against the reference."""
    spec = random_spec(SN_SEED, shape="small")
    report = run_oracle(
        spec, [UNIFORM], n_cores=4, maestro_seed=7, fault="skew-kernel"
    )
    hits = [
        f for f in report.failures
        if f.kind == "fastpath" and "fastpath-compiled" in f.codes
    ]
    assert hits, [f.to_dict() for f in report.failures]
    assert all("compiled" in f.detail for f in hits)


def test_unknown_fault_rejected() -> None:
    with pytest.raises(ValueError, match="unknown fault"):
        run_oracle(random_spec(0, shape="small"), [UNIFORM], fault="nope")


def test_capacity_exhaustion_is_excused_not_failed() -> None:
    """Per-core shards refuse earlier than the sequential NF — the §4
    capacity divergence must be classified, not reported as a bug."""
    spec = random_spec(SN_SEED, shape="small")
    exhaust = WorkloadSpec("exhaust", 5, n_packets=256, n_flows=64)
    report = run_oracle(spec, [exhaust], n_cores=4, maestro_seed=7)
    assert report.ok, [f.to_dict() for f in report.failures]


def test_signature_is_stable_and_workload_free() -> None:
    spec = random_spec(LOCKS_SEED, shape="small")
    churn = WorkloadSpec("churn", 13, n_packets=64, n_flows=16)
    a = run_oracle(spec, [UNIFORM], n_cores=4, maestro_seed=7, fault="drop-lock")
    b = run_oracle(spec, [churn], n_cores=4, maestro_seed=7, fault="drop-lock")
    sigs_a = {f.signature for f in a.failures if f.kind == "race"}
    sigs_b = {f.signature for f in b.failures if f.kind == "race"}
    assert sigs_a and sigs_a == sigs_b
