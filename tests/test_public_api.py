"""The documented public surface: imports, quickstart flow, docstrings."""

import pytest

import repro


class TestSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_key_types_exported(self):
        assert repro.Maestro and repro.ParallelNF and repro.Verdict
        assert repro.Packet and repro.SequentialRunner
        assert repro.PerformanceModel and repro.Workload

    def test_public_items_documented(self):
        import inspect

        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name} lacks a docstring"


class TestQuickstartFlow:
    """The README quickstart, verbatim in spirit."""

    def test_readme_flow(self):
        from repro import Maestro, Packet, emit_c
        from repro.nf.nfs import Firewall

        maestro = Maestro(seed=0)
        result = maestro.analyze(Firewall())
        assert result.solution.verdict is repro.Verdict.SHARED_NOTHING

        parallel = maestro.parallelize(Firewall(), n_cores=16, result=result)
        core, outcome = parallel.process(
            0, Packet(src_ip=1, dst_ip=2, src_port=3, dst_port=4)
        )
        assert 0 <= core < 16
        assert outcome.kind is repro.ActionKind.FORWARD
        assert "rss_configure" in emit_c(parallel)

    def test_eval_registry_documented_names(self):
        from repro.eval import EXPERIMENTS

        for name in ("fig5", "fig6", "fig8", "fig9", "fig10", "fig11", "fig14"):
            assert name in EXPERIMENTS


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        for name in errors.__dict__:
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError) or obj.__module__ != "repro.errors"
