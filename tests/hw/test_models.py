"""Hardware models: PCIe/line-rate, caches, locks, TM, NUMA, profiles."""

import numpy as np
import pytest

from repro.hw import params
from repro.hw.cache import CacheHierarchy
from repro.hw.cpu import BASE_PROFILES, benchmark_trace, profile_for
from repro.hw.locks import RwLockModel
from repro.hw.numa import DEFAULT_TOPOLOGY
from repro.hw.pcie import Bottleneck, bottleneck_for, io_ceiling_pps
from repro.hw.tm import TmModel
from repro.hw.vpp import VPP_NAT44_EI
from repro.nf.nfs import ALL_NFS, Firewall, Policer
from repro.traffic.distributions import paper_zipf_weights


class TestIoCeilings:
    def test_64b_is_pcie_bound_near_91mpps(self):
        """Figure 8's headline: ~90 Mpps / ~45 Gbps at 64 B."""
        pps = io_ceiling_pps(64)
        assert 85e6 < pps < 95e6
        assert 43 < params.pps_to_gbps(pps, 64) < 48
        assert pps == pytest.approx(params.pcie_pps(64))

    def test_large_packets_reach_line_rate(self):
        pps = io_ceiling_pps(1500)
        gbps = params.pps_to_gbps(pps, 1500)
        assert gbps > 93
        assert pps == pytest.approx(params.line_rate_pps(1500))

    def test_crossover_exists(self):
        assert params.pcie_pps(64) < params.line_rate_pps(64)
        assert params.pcie_pps(1500) > params.line_rate_pps(1500)

    def test_bottleneck_classification(self):
        assert bottleneck_for(1e6, 1e6, 64) is Bottleneck.CPU
        assert bottleneck_for(91e6, 500e6, 64) is Bottleneck.PCIE
        assert bottleneck_for(8e6, 500e6, 1500) is Bottleneck.LINE_RATE


class TestCacheHierarchy:
    def test_tiny_working_set_all_l1(self):
        cache = CacheHierarchy()
        fractions = cache.hit_fractions(1024)
        assert fractions["l1"] == 1.0
        assert cache.access_cycles(1024) == params.L1_CYCLES

    def test_cost_monotone_in_working_set(self):
        cache = CacheHierarchy()
        sizes = [2**k for k in range(10, 29)]
        costs = [cache.access_cycles(s) for s in sizes]
        assert all(a <= b + 1e-9 for a, b in zip(costs, costs[1:]))

    def test_huge_working_set_hits_dram(self):
        cache = CacheHierarchy()
        assert cache.access_cycles(2**34) > 0.9 * params.DRAM_CYCLES

    def test_zipf_beats_uniform(self):
        """The Figure 5 single-core effect: hot flows cache better."""
        cache = CacheHierarchy()
        working_set = 8 * 1024 * 1024
        weights = paper_zipf_weights(1000)
        assert cache.access_cycles(working_set, weights) < cache.access_cycles(
            working_set
        )

    def test_llc_sharing_hurts(self):
        working_set = 4 * 1024 * 1024
        alone = CacheHierarchy(llc_sharers=1).access_cycles(working_set)
        shared = CacheHierarchy(llc_sharers=16).access_cycles(working_set)
        assert shared > alone

    def test_numa_remote_penalty(self):
        cache = CacheHierarchy()
        big = 2**32
        assert cache.access_cycles(big, numa_remote=True) > cache.access_cycles(big)

    def test_fractions_sum_to_one(self):
        cache = CacheHierarchy()
        for size in (1, 10**4, 10**6, 10**8):
            fractions = cache.hit_fractions(size)
            assert sum(fractions.values()) == pytest.approx(1.0)


class TestLockModel:
    def test_read_path_is_cheap(self):
        lock = RwLockModel()
        assert lock.read_overhead() < 50

    def test_write_cost_grows_with_cores(self):
        lock = RwLockModel()
        profile = BASE_PROFILES["fw"]
        assert lock.write_overhead(16, profile) > lock.write_overhead(2, profile)
        assert lock.exclusive_section(16, profile) > lock.exclusive_section(
            2, profile
        )

    def test_write_includes_speculative_restart(self):
        lock = RwLockModel()
        profile = BASE_PROFILES["fw"]
        assert lock.write_overhead(4, profile) > profile.base_cycles


class TestTmModel:
    def test_single_core_never_aborts(self):
        tm = TmModel()
        assert tm.abort_probability(1, BASE_PROFILES["cl"], 1.0) == 0.0

    def test_aborts_grow_with_cores_and_complexity(self):
        tm = TmModel()
        simple = BASE_PROFILES["sbridge"]
        complex_ = BASE_PROFILES["cl"]
        assert tm.abort_probability(16, complex_, 0.0) > tm.abort_probability(
            4, complex_, 0.0
        )
        assert tm.abort_probability(8, complex_, 0.0) > tm.abort_probability(
            8, simple, 0.0
        )

    def test_writes_increase_aborts(self):
        tm = TmModel()
        profile = BASE_PROFILES["fw"]
        assert tm.abort_probability(8, profile, 1.0) > tm.abort_probability(
            8, profile, 0.0
        )

    def test_expected_attempts_bounded(self):
        tm = TmModel()
        assert tm.expected_attempts(0.0) == 1.0
        assert tm.expected_attempts(0.9) < tm.max_retries + 2

    def test_packet_overhead_components(self):
        tm = TmModel()
        extra, serialized = tm.packet_overhead(16, BASE_PROFILES["cl"], 0.5, 500)
        assert extra > tm.begin_commit_cycles
        assert serialized > 0


class TestNuma:
    def test_testbed_pins_to_single_node(self):
        """§4's rule of thumb holds on the modelled testbed (large LLC)."""
        advice = DEFAULT_TOPOLOGY.advise(pkt_size=64)
        assert advice.single_node
        assert "NIC" in advice.reason

    def test_small_llc_spreads(self):
        from repro.hw.numa import NumaTopology

        tiny = NumaTopology(llc_bytes=1024 * 1024)
        advice = tiny.advise(pkt_size=1500)
        assert not advice.single_node


class TestProfiles:
    def test_policer_writes_every_packet(self):
        profile = profile_for(Policer())
        assert profile.intrinsic_write_fraction > 0.95

    def test_fw_read_heavy_steady_state(self):
        profile = profile_for(Firewall())
        assert profile.intrinsic_write_fraction < 0.05
        assert profile.mem_ops_per_packet >= 1.5

    def test_nop_is_stateless(self):
        profile = profile_for(ALL_NFS["nop"]())
        assert profile.mem_ops_per_packet == 0.0
        assert profile.state_bytes_per_flow == 0.0

    def test_all_corpus_profiles_have_base_entries(self):
        for name in ALL_NFS:
            assert name in BASE_PROFILES

    def test_benchmark_trace_respects_spec(self):
        trace = benchmark_trace(Policer(), packets=100)
        assert all(port == 1 for port, _ in trace)
        lb_trace = benchmark_trace(ALL_NFS["lb"](), packets=100)
        heartbeat_ports = {port for port, _ in lb_trace[:8]}
        assert heartbeat_ports == {0}

    def test_vpp_adjustment(self):
        base = BASE_PROFILES["nat"]
        adjusted = VPP_NAT44_EI.adjust_profile(base)
        assert adjusted.name == "vpp-nat"
        assert adjusted.base_cycles != base.base_cycles
