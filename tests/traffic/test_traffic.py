"""Traffic substrate: distributions, generation, churn, pcap I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic import (
    PAPER_N_FLOWS,
    PAPER_TOP_FLOWS,
    PAPER_TOP_SHARE,
    TrafficGenerator,
    absolute_churn_fpm,
    churn_trace,
    fit_zipf_exponent,
    paper_zipf_weights,
    read_pcap,
    relative_from_absolute,
    top_share,
    write_fraction,
    write_pcap,
    zipf_weights,
)


class TestDistributions:
    def test_weights_normalized_and_descending(self):
        weights = zipf_weights(100, 1.1)
        assert weights.sum() == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_paper_parameters_fit(self):
        """'1k flows, 48 of which responsible for 80% of the traffic'."""
        weights = paper_zipf_weights()
        assert len(weights) == PAPER_N_FLOWS
        assert top_share(weights, PAPER_TOP_FLOWS) == pytest.approx(
            PAPER_TOP_SHARE, abs=0.01
        )

    @given(st.integers(10, 500), st.integers(1, 9))
    @settings(max_examples=20, deadline=None)
    def test_fit_inverts_top_share(self, n_flows, top_tenth):
        top_k = max(1, n_flows * top_tenth // 20)
        if top_k >= n_flows:
            return
        share = 0.6
        exponent = fit_zipf_exponent(n_flows, top_k, share)
        assert top_share(zipf_weights(n_flows, exponent), top_k) == pytest.approx(
            share, abs=0.01
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            fit_zipf_exponent(10, 2, 1.5)


class TestGenerator:
    def test_flows_distinct(self, generator):
        flows = generator.make_flows(500)
        assert len(set(flows)) == 500

    def test_seed_reproducible(self):
        a = TrafficGenerator(seed=4).make_flows(50)
        b = TrafficGenerator(seed=4).make_flows(50)
        assert a == b

    def test_trace_ports_and_sizes(self, generator):
        trace, _ = generator.uniform_trace(200, 20, pkt_size=128, in_port=1)
        assert all(port == 1 for port, _ in trace)
        assert all(pkt.wire_size == 128 for _, pkt in trace)

    def test_replies_never_precede_forward(self, generator):
        trace, flows = generator.uniform_trace(
            400, 30, in_port=0, reply_port=1, reply_fraction=0.5
        )
        opened: set = set()
        for port, pkt in trace:
            if port == 0:
                opened.add(pkt.flow_tuple())
            else:
                forward = pkt.inverted().flow_tuple()
                assert forward in opened

    def test_zipf_trace_is_skewed(self):
        trace, flows = TrafficGenerator(seed=6).zipf_trace(5000, 1000, in_port=0)
        counts: dict = {}
        for _, pkt in trace:
            counts[pkt.flow_tuple()] = counts.get(pkt.flow_tuple(), 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        assert sum(ranked[:48]) / 5000 > 0.6

    def test_size_mix(self, generator):
        from repro.traffic.generator import INTERNET_MIX

        trace, _ = generator.uniform_trace(
            300, 10, pkt_size=None, size_mix=INTERNET_MIX
        )
        sizes = {pkt.wire_size for _, pkt in trace}
        assert sizes <= {64, 576, 1500}
        assert len(sizes) > 1

    def test_timestamps_follow_rate(self, generator):
        trace, _ = generator.uniform_trace(10, 5, rate_pps=1000.0)
        deltas = [
            b[1].timestamp - a[1].timestamp for a, b in zip(trace, trace[1:])
        ]
        assert all(d == pytest.approx(1e-3) for d in deltas)


class TestChurn:
    def test_write_fraction_math(self):
        # 1000 flows/Gbit at 64B packets: 512 bits/packet.
        assert write_fraction(1000, 64) == pytest.approx(512e-6)
        assert write_fraction(0, 64) == 0.0
        assert write_fraction(1e12, 64) == 1.0

    def test_absolute_relative_roundtrip(self):
        assert relative_from_absolute(
            absolute_churn_fpm(123.0, 40.0), 40.0
        ) == pytest.approx(123.0)

    def test_churn_trace_new_flow_rate(self, generator):
        trace = churn_trace(generator, 10_000, 100, relative_churn_fpg=20_000)
        flows_seen = {pkt.flow_tuple() for _, pkt in trace}
        # p_new ~ 1%: about 100 fresh flows on top of the 100 live ones.
        assert 120 <= len(flows_seen) <= 260

    def test_zero_churn_keeps_flow_set(self, generator):
        trace = churn_trace(generator, 2000, 50, relative_churn_fpg=0.0)
        assert len({pkt.flow_tuple() for _, pkt in trace}) == 50


class TestPcap:
    def test_roundtrip(self, generator, tmp_path):
        trace, _ = generator.uniform_trace(
            50, 10, in_port=0, reply_port=1, reply_fraction=0.3, pkt_size=128
        )
        path = tmp_path / "trace.pcap"
        assert write_pcap(path, trace) == 50
        loaded = read_pcap(path)
        assert len(loaded) == 50
        for (port_a, pkt_a), (port_b, pkt_b) in zip(trace, loaded):
            assert port_a == port_b
            assert pkt_a.flow_tuple() == pkt_b.flow_tuple()
            assert pkt_b.wire_size == pkt_a.wire_size

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.pcap"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(ValueError):
            read_pcap(path)
