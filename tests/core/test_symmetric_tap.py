"""Same-port flow symmetry: the Woo & Park case end-to-end.

A monitoring tap sees *both* directions of every flow on one interface.
Its flow table is probed with the forward and the inverted tuple on the
same port, which forces a same-port symmetric RSS key — the exact
scenario of [74] that motivated RS3's generality (§2, challenge 2).
"""

from typing import Any

import pytest

from repro.core import Maestro, Verdict
from repro.nf.api import NF, ActionKind, NfContext, StateDecl, StateKind
from repro.nf.flow import FiveTuple
from repro.rs3.toeplitz import key_bit
from repro.sim.equivalence import check_equivalence

TAP, OUT = 0, 1


class TapMonitor(NF):
    """Count packets per bidirectional flow observed on a tap port."""

    name = "tap_monitor"
    ports = {"tap": TAP, "out": OUT}
    expiration_time = 60.0

    def __init__(self, capacity: int = 8192):
        self.capacity = capacity

    def state(self) -> list[StateDecl]:
        return [
            StateDecl("tap_flows", StateKind.MAP, self.capacity),
            StateDecl("tap_chain", StateKind.DCHAIN, self.capacity),
            StateDecl(
                "tap_counts",
                StateKind.VECTOR,
                self.capacity,
                value_layout=(("packets", 32),),
            ),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        if port != TAP:
            ctx.forward(TAP)
        ctx.expire_flows("tap_flows", "tap_chain")
        forward_key = (pkt.src_ip, pkt.src_port, pkt.dst_ip, pkt.dst_port)
        reverse_key = (pkt.dst_ip, pkt.dst_port, pkt.src_ip, pkt.src_port)
        found, index = ctx.map_get("tap_flows", forward_key)
        if ctx.cond(ctx.lnot(found)):
            found, index = ctx.map_get("tap_flows", reverse_key)
        if ctx.cond(found):
            ctx.dchain_rejuvenate("tap_chain", index)
            counter = ctx.vector_borrow("tap_counts", index)
            ctx.vector_put(
                "tap_counts",
                index,
                {"packets": ctx.add(counter["packets"], ctx.const(1, 32))},
            )
        else:
            ok, index = ctx.dchain_allocate("tap_chain")
            if ctx.cond(ok):
                ctx.map_put("tap_flows", forward_key, index)
                ctx.vector_put("tap_counts", index, {"packets": 1})
        ctx.forward(OUT)


@pytest.fixture(scope="module")
def tap_result():
    return Maestro(seed=74).analyze(TapMonitor())


class TestAnalysis:
    def test_shared_nothing_with_same_port_pair(self, tap_result):
        solution = tap_result.solution
        assert solution.verdict is Verdict.SHARED_NOTHING
        same_port = [p for p in solution.pairs if p.port_a == p.port_b == TAP]
        assert same_port
        mapping = same_port[0].mapping()
        assert mapping["src_ip"] == "dst_ip"
        assert mapping["src_port"] == "dst_port"

    def test_key_has_woo_park_structure(self, tap_result):
        key = tap_result.keys[TAP]
        for i in range(63):
            assert key_bit(key, i) == key_bit(key, i + 32)
        for i in range(64, 111):
            assert key_bit(key, i) == key_bit(key, i + 16)


class TestEndToEnd:
    def test_both_directions_same_core(self, tap_result):
        maestro = Maestro(seed=74)
        parallel = maestro.parallelize(TapMonitor(), n_cores=8, result=tap_result)
        import numpy as np

        rng = np.random.default_rng(4)
        for _ in range(200):
            flow = FiveTuple(
                int(rng.integers(1, 2**32)), int(rng.integers(1, 2**32)),
                int(rng.integers(1, 2**16)), int(rng.integers(1, 2**16)),
            )
            assert parallel.core_for(TAP, flow.packet()) == parallel.core_for(
                TAP, flow.inverted().packet()
            )

    def test_equivalence(self, tap_result, generator):
        maestro = Maestro(seed=74)
        parallel = maestro.parallelize(TapMonitor(), n_cores=4, result=tap_result)
        flows = generator.make_flows(50)
        trace = []
        for flow in flows:
            trace.append((TAP, flow.packet()))
            trace.append((TAP, flow.inverted().packet()))
            trace.append((TAP, flow.packet()))
        report = check_equivalence(TapMonitor, parallel, trace)
        assert report.equivalent, report.describe()
