"""Sharding solution -> RS3 requirement compilation (§3.5)."""

import pytest

from repro.core.rss_compile import compile_rss
from repro.errors import RssUnsatisfiableError
from repro.nf.nfs import ALL_NFS, Firewall, Nat, Nop, Policer
from repro.rs3.fields import E810, PERMISSIVE_NIC, RssField
from repro.rs3.solver import CancelField, MapFields


class TestPolicerCompilation:
    def test_e810_cancels_ports_and_src(self, analyses):
        result = analyses["policer"]
        compilation = compile_rss(Policer(), result.solution, E810)
        cancels = {
            (r.port, r.field)
            for r in compilation.requirements
            if isinstance(r, CancelField)
        }
        # Sharding on dst_ip alone: everything else the option hashes must
        # be cancelled (the E810 cannot hash IPs without ports, §6.1).
        assert cancels == {
            (1, RssField.SRC_IP),
            (1, RssField.SRC_PORT),
            (1, RssField.DST_PORT),
        }

    def test_permissive_nic_needs_fewer_cancels(self, analyses):
        result = analyses["policer"]
        compilation = compile_rss(Policer(), result.solution, PERMISSIVE_NIC)
        cancels = [
            r for r in compilation.requirements if isinstance(r, CancelField)
        ]
        # The IP-only option only forces src_ip to be cancelled.
        assert {(c.port, c.field) for c in cancels} == {(1, RssField.SRC_IP)}


class TestFirewallCompilation:
    def test_cross_port_mappings(self, analyses):
        compilation = compile_rss(Firewall(), analyses["fw"].solution, E810)
        maps = {
            (r.port_a, r.field_a, r.port_b, r.field_b)
            for r in compilation.requirements
            if isinstance(r, MapFields)
        }
        assert (0, RssField.SRC_IP, 1, RssField.DST_IP) in maps
        assert (0, RssField.DST_PORT, 1, RssField.SRC_PORT) in maps
        assert len(maps) == 4

    def test_no_cancels_for_full_tuple(self, analyses):
        compilation = compile_rss(Firewall(), analyses["fw"].solution, E810)
        assert not any(
            isinstance(r, CancelField) for r in compilation.requirements
        )


class TestNatCompilation:
    def test_cancels_and_maps(self, analyses):
        compilation = compile_rss(Nat(), analyses["nat"].solution, E810)
        cancels = {
            (r.port, r.field)
            for r in compilation.requirements
            if isinstance(r, CancelField)
        }
        assert (0, RssField.SRC_IP) in cancels
        assert (1, RssField.DST_PORT) in cancels
        maps = {
            (r.field_a, r.field_b)
            for r in compilation.requirements
            if isinstance(r, MapFields)
        }
        assert maps == {
            (RssField.DST_IP, RssField.SRC_IP),
            (RssField.DST_PORT, RssField.SRC_PORT),
        }


class TestFreePorts:
    def test_load_balance_everything_free(self, analyses):
        compilation = compile_rss(Nop(), analyses["nop"].solution, E810)
        assert compilation.free_ports == [0, 1]
        assert not compilation.requirements

    def test_locks_everything_free(self, analyses):
        nf = ALL_NFS["lb"]()
        compilation = compile_rss(nf, analyses["lb"].solution, E810)
        assert compilation.free_ports == [0, 1]

    def test_psd_other_port_free(self, analyses):
        nf = ALL_NFS["psd"]()
        compilation = compile_rss(nf, analyses["psd"].solution, E810)
        assert compilation.free_ports == [1]
