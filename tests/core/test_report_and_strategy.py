"""StatefulReport rendering and Strategy.default_for coverage."""

from __future__ import annotations

import pytest

from repro.core.codegen import Strategy
from repro.core.report import build_report
from repro.core.sharding import Verdict
from repro.nf.nfs import ALL_NFS
from repro.symbex.engine import explore_nf


def _report(name: str):
    nf = ALL_NFS[name]()
    return build_report(nf, explore_nf(nf))


def test_describe_lists_every_entry_with_port_and_rw() -> None:
    report = _report("policer")
    text = report.describe()
    lines = text.splitlines()
    assert lines[0] == f"stateful report for {report.nf_name}:"
    entry_lines = [l for l in lines if l.strip().startswith("[port")]
    assert len(entry_lines) == len(report.entries)
    assert any("[W]" in l for l in entry_lines)
    assert any("[R]" in l for l in entry_lines)
    for entry in report.entries:
        assert entry.describe() in text


def test_describe_names_filtered_read_only_objects() -> None:
    report = _report("sbridge")
    assert report.stateless  # only a read-only table remains
    text = report.describe()
    assert "filtered read-only objects:" in text
    for obj in report.read_only_objects:
        assert obj in text


def test_describe_omits_filter_line_when_nothing_filtered() -> None:
    report = _report("policer")
    assert not report.read_only_objects
    assert "filtered read-only objects" not in report.describe()


@pytest.mark.parametrize(
    ("verdict", "expected"),
    [
        (Verdict.SHARED_NOTHING, Strategy.SHARED_NOTHING),
        (Verdict.LOAD_BALANCE, Strategy.SHARED_NOTHING),
        (Verdict.LOCKS, Strategy.LOCKS),
    ],
)
def test_strategy_default_for_every_verdict(
    verdict: Verdict, expected: Strategy
) -> None:
    assert Strategy.default_for(verdict) is expected


def test_default_for_is_total_over_the_enum() -> None:
    for verdict in Verdict:
        assert isinstance(Strategy.default_for(verdict), Strategy)
