"""Code Generator: parallel NF construction and C emission (§3.6)."""

import pytest

from repro.core import Strategy, Verdict, emit_c
from repro.errors import SimulationError
from repro.nf.nfs import ALL_NFS, Firewall
from repro.nf.packet import Packet


def make_parallel(analyses, name, n_cores=4, strategy=None):
    result = analyses[name]
    return analyses.maestro.parallelize(
        ALL_NFS[name](), n_cores=n_cores, result=result, strategy=strategy
    )


class TestGeneration:
    def test_shared_nothing_gets_per_core_state(self, analyses):
        parallel = make_parallel(analyses, "fw", n_cores=4)
        assert parallel.strategy is Strategy.SHARED_NOTHING
        stores = {id(core.ctx.store) for core in parallel.cores}
        assert len(stores) == 4
        assert parallel.shared_store is None

    def test_state_capacity_divided(self, analyses):
        parallel = make_parallel(analyses, "fw", n_cores=8)
        nf_capacity = Firewall().capacity
        for core in parallel.cores:
            assert core.ctx.store["fw_flows"].capacity == nf_capacity // 8

    def test_locks_share_one_store(self, analyses):
        parallel = make_parallel(analyses, "lb", n_cores=4)
        assert parallel.strategy is Strategy.LOCKS
        assert parallel.shared_store is not None
        stores = {id(core.ctx.store) for core in parallel.cores}
        assert len(stores) == 1

    def test_strategy_override_to_locks(self, analyses):
        parallel = make_parallel(analyses, "fw", strategy=Strategy.LOCKS)
        assert parallel.strategy is Strategy.LOCKS
        assert parallel.shared_store is not None

    def test_strategy_override_to_tm(self, analyses):
        parallel = make_parallel(analyses, "fw", strategy=Strategy.TM)
        assert parallel.strategy is Strategy.TM

    def test_shared_nothing_cannot_be_forced(self, analyses):
        with pytest.raises(SimulationError):
            make_parallel(analyses, "lb", strategy=Strategy.SHARED_NOTHING)

    def test_invalid_core_count(self, analyses):
        with pytest.raises(SimulationError):
            make_parallel(analyses, "fw", n_cores=0)

    def test_default_strategy_follows_verdict(self, analyses):
        assert make_parallel(analyses, "fw").strategy is Strategy.SHARED_NOTHING
        assert make_parallel(analyses, "dbridge").strategy is Strategy.LOCKS


class TestProcessing:
    def test_process_returns_core_and_result(self, analyses):
        parallel = make_parallel(analyses, "fw")
        core, result = parallel.process(0, Packet(1, 2, 3, 4))
        assert 0 <= core < parallel.n_cores
        assert result.port == 1

    def test_stats_accumulate(self, analyses):
        parallel = make_parallel(analyses, "fw")
        for i in range(10):
            parallel.process(0, Packet(i, 2, 3, 4))
        assert sum(core.packets for core in parallel.cores) == 10
        assert parallel.write_fraction() == 1.0  # all new flows
        parallel.reset_stats()
        assert sum(core.packets for core in parallel.cores) == 0

    def test_core_shares_sum_to_one(self, analyses):
        parallel = make_parallel(analyses, "fw", n_cores=8)
        trace = [(0, Packet(i, i + 1, 10, 20)) for i in range(200)]
        shares = parallel.core_shares(trace)
        assert abs(shares.sum() - 1.0) < 1e-9
        assert len(shares) == 8


class TestEmitC:
    def test_keys_embedded(self, analyses):
        parallel = make_parallel(analyses, "fw")
        code = emit_c(parallel)
        assert "RSS_KEY_PORT_0[52]" in code
        assert "RSS_KEY_PORT_1[52]" in code
        key0 = parallel.rss.ports[0].key
        assert f"0x{key0[0]:02x}" in code

    def test_shared_nothing_skeleton(self, analyses):
        code = emit_c(make_parallel(analyses, "fw"))
        assert "shard on" in code
        assert "no" in code and "synchronization" in code

    def test_locks_warning_present(self, analyses):
        code = emit_c(make_parallel(analyses, "dbridge"))
        assert "read/write locks" in code
        assert "Maestro warning" in code

    def test_per_core_state_init(self, analyses):
        code = emit_c(make_parallel(analyses, "fw", n_cores=4))
        assert "map_init(&fw_flows[core_id]" in code
        assert "/* per core */" in code

    def test_tm_skeleton(self, analyses):
        code = emit_c(make_parallel(analyses, "fw", strategy=Strategy.TM))
        assert "_xbegin" in code
