"""Code Generator: parallel NF construction and C emission (§3.6)."""

import pytest

from repro.core import Strategy, Verdict, emit_c
from repro.errors import SimulationError
from repro.nf.nfs import ALL_NFS, Firewall
from repro.nf.packet import Packet


def make_parallel(analyses, name, n_cores=4, strategy=None):
    result = analyses[name]
    return analyses.maestro.parallelize(
        ALL_NFS[name](), n_cores=n_cores, result=result, strategy=strategy
    )


class TestGeneration:
    def test_shared_nothing_gets_per_core_state(self, analyses):
        parallel = make_parallel(analyses, "fw", n_cores=4)
        assert parallel.strategy is Strategy.SHARED_NOTHING
        stores = {id(core.ctx.store) for core in parallel.cores}
        assert len(stores) == 4
        assert parallel.shared_store is None

    def test_state_capacity_divided(self, analyses):
        parallel = make_parallel(analyses, "fw", n_cores=8)
        nf_capacity = Firewall().capacity
        for core in parallel.cores:
            assert core.ctx.store["fw_flows"].capacity == nf_capacity // 8

    def test_locks_share_one_store(self, analyses):
        parallel = make_parallel(analyses, "lb", n_cores=4)
        assert parallel.strategy is Strategy.LOCKS
        assert parallel.shared_store is not None
        stores = {id(core.ctx.store) for core in parallel.cores}
        assert len(stores) == 1

    def test_strategy_override_to_locks(self, analyses):
        parallel = make_parallel(analyses, "fw", strategy=Strategy.LOCKS)
        assert parallel.strategy is Strategy.LOCKS
        assert parallel.shared_store is not None

    def test_strategy_override_to_tm(self, analyses):
        parallel = make_parallel(analyses, "fw", strategy=Strategy.TM)
        assert parallel.strategy is Strategy.TM

    def test_shared_nothing_cannot_be_forced(self, analyses):
        with pytest.raises(SimulationError):
            make_parallel(analyses, "lb", strategy=Strategy.SHARED_NOTHING)

    def test_invalid_core_count(self, analyses):
        with pytest.raises(SimulationError):
            make_parallel(analyses, "fw", n_cores=0)

    def test_default_strategy_follows_verdict(self, analyses):
        assert make_parallel(analyses, "fw").strategy is Strategy.SHARED_NOTHING
        assert make_parallel(analyses, "dbridge").strategy is Strategy.LOCKS


class TestProcessing:
    def test_process_returns_core_and_result(self, analyses):
        parallel = make_parallel(analyses, "fw")
        core, result = parallel.process(0, Packet(1, 2, 3, 4))
        assert 0 <= core < parallel.n_cores
        assert result.port == 1

    def test_stats_accumulate(self, analyses):
        parallel = make_parallel(analyses, "fw")
        for i in range(10):
            parallel.process(0, Packet(i, 2, 3, 4))
        assert sum(core.packets for core in parallel.cores) == 10
        assert parallel.write_fraction() == 1.0  # all new flows
        parallel.reset_stats()
        assert sum(core.packets for core in parallel.cores) == 0

    def test_core_shares_sum_to_one(self, analyses):
        parallel = make_parallel(analyses, "fw", n_cores=8)
        trace = [(0, Packet(i, i + 1, 10, 20)) for i in range(200)]
        shares = parallel.core_shares(trace)
        assert abs(shares.sum() - 1.0) < 1e-9
        assert len(shares) == 8


class TestEmitC:
    def test_keys_embedded(self, analyses):
        parallel = make_parallel(analyses, "fw")
        code = emit_c(parallel)
        assert "RSS_KEY_PORT_0[52]" in code
        assert "RSS_KEY_PORT_1[52]" in code
        key0 = parallel.rss.ports[0].key
        assert f"0x{key0[0]:02x}" in code

    def test_shared_nothing_skeleton(self, analyses):
        code = emit_c(make_parallel(analyses, "fw"))
        assert "shard on" in code
        assert "no" in code and "synchronization" in code

    def test_locks_warning_present(self, analyses):
        code = emit_c(make_parallel(analyses, "dbridge"))
        assert "read/write locks" in code
        assert "Maestro warning" in code

    def test_per_core_state_init(self, analyses):
        code = emit_c(make_parallel(analyses, "fw", n_cores=4))
        assert "map_init(&fw_flows[core_id]" in code
        assert "/* per core */" in code

    def test_tm_skeleton(self, analyses):
        code = emit_c(make_parallel(analyses, "fw", strategy=Strategy.TM))
        assert "_xbegin" in code


class TestLockPlan:
    """The plan's introspection API: position, dedup, coverage edges."""

    def make_plan(self, **overrides):
        from repro.core.codegen import LockPlan

        defaults = dict(
            strategy=Strategy.LOCKS,
            locked=frozenset({"alpha", "beta"}),
            order=("alpha", "beta"),
        )
        defaults.update(overrides)
        return LockPlan(**defaults)

    def test_position_follows_order(self):
        plan = self.make_plan()
        assert plan.position("alpha") == 0
        assert plan.position("beta") == 1

    def test_position_of_unordered_object_raises_clear_error(self):
        plan = self.make_plan()
        with pytest.raises(SimulationError, match="no position"):
            plan.position("gamma")
        with pytest.raises(SimulationError, match="alpha, beta"):
            plan.position("gamma")

    def test_position_error_on_empty_plan_names_the_gap(self):
        plan = self.make_plan(
            strategy=Strategy.SHARED_NOTHING, locked=frozenset(), order=()
        )
        with pytest.raises(SimulationError, match="nothing"):
            plan.position("alpha")

    def test_acquisition_sequence_follows_global_order(self):
        plan = self.make_plan()
        assert plan.acquisition_sequence(["beta", "alpha"]) == ("alpha", "beta")

    def test_acquisition_sequence_deduplicates_corrupt_order(self):
        plan = self.make_plan(order=("alpha", "beta", "alpha"))
        assert plan.acquisition_sequence(["alpha", "beta"]) == ("alpha", "beta")
        assert plan.acquisition_sequence(["alpha", "alpha"]) == ("alpha",)

    def test_acquisition_sequence_ignores_uncovered_objects(self):
        plan = self.make_plan()
        assert plan.acquisition_sequence(["alpha", "gamma"]) == ("alpha",)
        assert plan.acquisition_sequence([]) == ()
        assert plan.acquisition_sequence(["gamma"]) == ()

    def test_covers_edge_cases(self):
        plan = self.make_plan()
        assert plan.covers("alpha") and plan.covers("beta")
        assert not plan.covers("gamma")
        assert not plan.covers("")
        empty = self.make_plan(
            strategy=Strategy.SHARED_NOTHING, locked=frozenset(), order=()
        )
        assert not empty.covers("alpha")

    def test_build_excludes_read_only_tables(self):
        from repro.core.codegen import LockPlan

        plan = LockPlan.build(ALL_NFS["sbridge"](), Strategy.LOCKS)
        assert not plan.covers("sbr_macs")
