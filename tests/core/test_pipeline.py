"""The end-to-end Maestro pipeline (Figure 1)."""

import pytest

from repro.core import Maestro, Verdict
from repro.nf.nfs import ALL_NFS, Firewall
from repro.rs3.fields import E810


class TestAnalyze:
    def test_stage_timings_recorded(self, analyses):
        result = analyses["fw"]
        assert set(result.timings) >= {
            "symbolic_execution",
            "constraints_generator",
            "rs3",
        }
        assert result.total_time > 0

    def test_keys_cover_all_ports(self, analyses):
        for name in ALL_NFS:
            result = analyses[name]
            assert set(result.keys) == {0, 1}
            for key in result.keys.values():
                assert len(key) == E810.key_bytes

    def test_key_stats_populated(self, analyses):
        stats = analyses["fw"].key_stats
        assert stats.attempts >= 1
        assert stats.constraint_rows > 0

    def test_nop_keys_unconstrained(self, analyses):
        assert analyses["nop"].key_stats.constraint_rows == 0

    def test_describe_includes_keys_and_timings(self, analyses):
        text = analyses["fw"].describe()
        assert "key port 0:" in text and "timings:" in text

    def test_different_seeds_different_keys(self):
        key_a = Maestro(seed=1).analyze(Firewall()).keys[0]
        key_b = Maestro(seed=2).analyze(Firewall()).keys[0]
        assert key_a != key_b

    def test_same_seed_reproducible_verdict(self):
        a = Maestro(seed=3).analyze(Firewall())
        b = Maestro(seed=3).analyze(Firewall())
        assert a.keys == b.keys
        assert a.solution.per_port == b.solution.per_port


class TestParallelize:
    def test_reuses_analysis(self, analyses):
        result = analyses["fw"]
        parallel = analyses.maestro.parallelize(
            Firewall(), n_cores=2, result=result
        )
        assert parallel.rss.ports[0].key == result.keys[0]
        assert "code_generator" in result.timings

    def test_rss_configuration_queue_count(self, analyses):
        rss = analyses["fw"].rss_configuration(n_cores=6)
        assert rss.n_queues == 6
        for config in rss.ports.values():
            assert config.table.n_queues == 6
