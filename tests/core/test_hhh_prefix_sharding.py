"""Subnet-prefix sharding end-to-end: the §3.5 Hierarchical Heavy Hitter.

"what if ... it requires complex constraints between packets (e.g., a
Hierarchical Heavy Hitter sharding on multiple subnets of the source
IP ...)?" — the HHH counts traffic per /24 *and* per /16 of the source
address.  Correct sharding may only depend on the bits common to both
prefixes (the /16), so RS3 must find a key that hashes ``src_ip[31:16]``
while cancelling the low 16 bits of src_ip and every other field.
"""

from typing import Any

import pytest

from repro.core import Maestro, Verdict
from repro.nf.api import NF, NfContext, StateDecl, StateKind
from repro.nf.packet import Packet
from repro.rs3.solver import CancelBits
from repro.sim.equivalence import check_equivalence

LAN, WAN = 0, 1


class HierarchicalHeavyHitter(NF):
    """Count packets per /24 and per /16 source subnet."""

    name = "hhh"
    ports = {"lan": LAN, "wan": WAN}

    def __init__(self, capacity: int = 8192):
        self.capacity = capacity

    def state(self) -> list[StateDecl]:
        return [
            StateDecl("hhh_24", StateKind.MAP, self.capacity),
            StateDecl("hhh_24_chain", StateKind.DCHAIN, self.capacity),
            StateDecl("hhh_16", StateKind.MAP, self.capacity),
            StateDecl("hhh_16_chain", StateKind.DCHAIN, self.capacity),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        if port != LAN:
            ctx.forward(LAN)
        for map_name, chain, hi, lo in (
            ("hhh_24", "hhh_24_chain", 31, 8),
            ("hhh_16", "hhh_16_chain", 31, 16),
        ):
            prefix = ctx.extract(pkt.src_ip, hi, lo)
            found, _ = ctx.map_get(map_name, (prefix,))
            if ctx.cond(ctx.lnot(found)):
                ok, index = ctx.dchain_allocate(chain)
                if ctx.cond(ok):
                    ctx.map_put(map_name, (prefix,), index)
        ctx.forward(WAN)


@pytest.fixture(scope="module")
def hhh_result():
    return Maestro(seed=1616).analyze(HierarchicalHeavyHitter())


class TestAnalysis:
    def test_shards_on_the_coarser_prefix(self, hhh_result):
        """R2 over bit sets: /24 allows bits [31:8], /16 allows [31:16];
        the intersection — the /16 prefix — is the sharding."""
        solution = hhh_result.solution
        assert solution.verdict is Verdict.SHARED_NOTHING
        assert solution.per_port == {LAN: ("src_ip",)}
        assert solution.per_port_bits[LAN]["src_ip"] == frozenset(range(16, 32))

    def test_describe_shows_the_slice(self, hhh_result):
        assert "src_ip[31:16]" in hhh_result.solution.describe()

    def test_compilation_cancels_low_bits(self, hhh_result):
        partial = [
            r
            for r in hhh_result.compilation.requirements
            if isinstance(r, CancelBits)
        ]
        assert len(partial) == 1
        assert partial[0].bits == frozenset(range(16))


class TestKeyProperties:
    def test_same_slash16_same_core(self, hhh_result):
        """The crux: hosts within a /16 MUST colocate — a key hashing the
        full src_ip would scatter them (the soundness trap of treating a
        prefix key as a full-field key)."""
        maestro = Maestro(seed=1616)
        parallel = maestro.parallelize(
            HierarchicalHeavyHitter(), n_cores=8, result=hhh_result
        )
        import numpy as np

        rng = np.random.default_rng(8)
        for _ in range(100):
            subnet = int(rng.integers(0, 2**16)) << 16
            host_a = Packet(subnet | int(rng.integers(0, 2**16)), 2, 3, 4)
            host_b = Packet(
                subnet | int(rng.integers(0, 2**16)),
                int(rng.integers(1, 2**32)),
                int(rng.integers(1, 2**16)),
                int(rng.integers(1, 2**16)),
            )
            assert parallel.core_for(LAN, host_a) == parallel.core_for(
                LAN, host_b
            )

    def test_different_slash16s_spread(self, hhh_result):
        maestro = Maestro(seed=1616)
        parallel = maestro.parallelize(
            HierarchicalHeavyHitter(), n_cores=8, result=hhh_result
        )
        import numpy as np

        rng = np.random.default_rng(9)
        cores = {
            parallel.core_for(
                LAN, Packet(int(rng.integers(0, 2**16)) << 16, 2, 3, 4)
            )
            for _ in range(100)
        }
        assert len(cores) >= 4

    def test_equivalence(self, hhh_result, generator):
        maestro = Maestro(seed=1616)
        parallel = maestro.parallelize(
            HierarchicalHeavyHitter(), n_cores=4, result=hhh_result
        )
        trace, _ = generator.uniform_trace(300, 80, in_port=LAN)
        report = check_equivalence(HierarchicalHeavyHitter, parallel, trace)
        assert report.equivalent, report.describe()
