"""Metamorphic end-to-end property: for *any* field-keyed NF, the whole
pipeline (ESE -> rules -> key solving -> codegen -> RSS steering) must
yield colocation exactly on the NF's key fields.

Hypothesis generates NFs keyed on arbitrary non-empty subsets of the
RSS-hashable fields; for each we assert:

1. the analysis shards on exactly those fields (R1),
2. packets agreeing on the key fields land on the same core,
3. packets differing on a key field spread over multiple cores
   (no degenerate keys slip through the quality gate).
"""

from typing import Any

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Maestro, Verdict
from repro.nf.api import NF, NfContext, StateDecl, StateKind
from repro.nf.packet import Packet

LAN, WAN = 0, 1
RSS_FIELDS = ("src_ip", "dst_ip", "src_port", "dst_port")


def make_keyed_nf(key_fields: tuple[str, ...]) -> NF:
    """An NF tracking state keyed by exactly ``key_fields``."""

    class KeyedNf(NF):
        name = f"keyed_{'_'.join(key_fields)}"
        ports = {"lan": LAN, "wan": WAN}

        def state(self) -> list[StateDecl]:
            return [
                StateDecl("kn_map", StateKind.MAP, 4096),
                StateDecl("kn_chain", StateKind.DCHAIN, 4096),
            ]

        def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
            if port != LAN:
                ctx.forward(LAN)
            key = tuple(getattr(pkt, name) for name in key_fields)
            found, _ = ctx.map_get("kn_map", key)
            if ctx.cond(ctx.lnot(found)):
                ok, index = ctx.dchain_allocate("kn_chain")
                if ctx.cond(ok):
                    ctx.map_put("kn_map", key, index)
            ctx.forward(WAN)

    return KeyedNf()


def random_packet(rng: np.random.Generator) -> Packet:
    return Packet(
        src_ip=int(rng.integers(1, 2**32)),
        dst_ip=int(rng.integers(1, 2**32)),
        src_port=int(rng.integers(1, 2**16)),
        dst_port=int(rng.integers(1, 2**16)),
    )


def with_same_fields(
    base: Packet, other: Packet, fields: tuple[str, ...]
) -> Packet:
    values = {name: other.field(name) for name in ("src_ip", "dst_ip", "src_port", "dst_port")}
    values.update({name: base.field(name) for name in fields})
    return Packet(**values)


@st.composite
def field_subsets(draw):
    subset = draw(
        st.sets(st.sampled_from(RSS_FIELDS), min_size=1, max_size=4)
    )
    return tuple(name for name in RSS_FIELDS if name in subset)


class TestEndToEndColocation:
    @given(field_subsets(), st.integers(0, 2**31))
    @settings(max_examples=12, deadline=None)
    def test_pipeline_colocates_exactly_the_key_fields(self, key_fields, seed):
        nf = make_keyed_nf(key_fields)
        maestro = Maestro(seed=seed % 1000)
        result = maestro.analyze(nf)

        # 1. Analysis: shared-nothing on exactly the key fields.
        assert result.solution.verdict is Verdict.SHARED_NOTHING
        assert set(result.solution.per_port[LAN]) == set(key_fields)

        parallel = maestro.parallelize(make_keyed_nf(key_fields), 8, result=result)
        rng = np.random.default_rng(seed)

        # 2. Agreement on the key fields => same core, always.
        for _ in range(40):
            base, noise = random_packet(rng), random_packet(rng)
            sibling = with_same_fields(base, noise, key_fields)
            assert parallel.core_for(LAN, base) == parallel.core_for(
                LAN, sibling
            ), f"colocation violated for key {key_fields}"

        # 3. The key actually spreads traffic over the cores.
        cores = {
            parallel.core_for(LAN, random_packet(rng)) for _ in range(64)
        }
        assert len(cores) >= 3, "degenerate key escaped the quality gate"
