"""The headline analysis result: per-NF verdicts matching §6.1 + Figure 2.

This is the reproduction's ground truth: Maestro must reach exactly the
paper's conclusion for every NF in the corpus, including the sharding
fields, the rules exercised, and the human-readable explanations.
"""

import pytest

from repro.core import Verdict
from repro.core.report import build_report
from repro.core.sharding import ConstraintsGenerator
from repro.nf.nfs.micro import (
    DhcpGuard,
    DualCounter,
    FlowCounter,
    GlobalCounter,
    SrcStats,
)
from repro.symbex import explore_nf


def solve(nf):
    return ConstraintsGenerator(build_report(nf, explore_nf(nf))).solve()


class TestCorpusVerdicts:
    """§6.1: one assertion block per NF of the paper's corpus."""

    def test_nop_load_balance(self, analyses):
        solution = analyses["nop"].solution
        assert solution.verdict is Verdict.LOAD_BALANCE
        assert "no state" in " ".join(solution.explanation)

    def test_sbridge_load_balance(self, analyses):
        solution = analyses["sbridge"].solution
        assert solution.verdict is Verdict.LOAD_BALANCE
        assert "read-only" in " ".join(solution.explanation)

    def test_policer_shards_on_dst_ip(self, analyses):
        solution = analyses["policer"].solution
        assert solution.verdict is Verdict.SHARED_NOTHING
        assert solution.per_port == {1: ("dst_ip",)}

    def test_dbridge_locks_because_of_macs(self, analyses):
        solution = analyses["dbridge"].solution
        assert solution.verdict is Verdict.LOCKS
        text = " ".join(solution.explanation)
        assert "mac" in text.lower()

    def test_fw_symmetric_sharding(self, analyses):
        solution = analyses["fw"].solution
        assert solution.verdict is Verdict.SHARED_NOTHING
        four = ("src_ip", "dst_ip", "src_port", "dst_port")
        assert solution.per_port == {0: four, 1: four}
        (pair,) = solution.pairs
        mapping = pair.mapping()
        assert mapping["src_ip"] == "dst_ip"
        assert mapping["dst_ip"] == "src_ip"
        assert mapping["src_port"] == "dst_port"
        assert mapping["dst_port"] == "src_port"

    def test_psd_subsumes_to_src_ip(self, analyses):
        solution = analyses["psd"].solution
        assert solution.verdict is Verdict.SHARED_NOTHING
        assert solution.per_port == {0: ("src_ip",)}
        assert "R2" in solution.rules_applied

    def test_nat_r5_server_sharding(self, analyses):
        solution = analyses["nat"].solution
        assert solution.verdict is Verdict.SHARED_NOTHING
        assert solution.per_port == {
            0: ("dst_ip", "dst_port"),
            1: ("src_ip", "src_port"),
        }
        assert "R5" in solution.rules_applied
        assert any("mismatch behaves" in note for note in solution.explanation)

    def test_lb_locks(self, analyses):
        solution = analyses["lb"].solution
        assert solution.verdict is Verdict.LOCKS
        assert any("hash" in note or "data-dependent" in note
                   for note in solution.explanation)

    def test_cl_shards_on_ip_pair(self, analyses):
        solution = analyses["cl"].solution
        assert solution.verdict is Verdict.SHARED_NOTHING
        assert solution.per_port == {
            0: ("src_ip", "dst_ip"),
            1: ("src_ip", "dst_ip"),
        }


class TestFigure2Rules:
    """One micro-NF per rule (Figure 2)."""

    def test_r1_flow_counter(self):
        solution = solve(FlowCounter())
        assert solution.verdict is Verdict.SHARED_NOTHING
        assert set(solution.per_port[0]) == {
            "src_ip", "dst_ip", "src_port", "dst_port",
        }

    def test_r2_subsumption(self):
        solution = solve(SrcStats())
        assert solution.verdict is Verdict.SHARED_NOTHING
        assert solution.per_port == {0: ("src_ip",)}
        assert "R2" in solution.rules_applied

    def test_r3_disjoint_counters(self):
        solution = solve(DualCounter())
        assert solution.verdict is Verdict.LOCKS
        assert "R3" in solution.rules_applied
        assert any("disjoint" in note for note in solution.explanation)

    def test_r4_global_counter(self):
        solution = solve(GlobalCounter())
        assert solution.verdict is Verdict.LOCKS
        assert "R4" in solution.rules_applied

    def test_r5_dhcp_guard(self):
        solution = solve(DhcpGuard())
        assert solution.verdict is Verdict.SHARED_NOTHING
        assert solution.per_port == {0: ("src_ip",)}
        assert "R5" in solution.rules_applied


class TestSolutionPresentation:
    def test_describe_mentions_verdict_and_ports(self, analyses):
        text = analyses["fw"].solution.describe()
        assert "shared-nothing" in text
        assert "port 0" in text and "port 1" in text

    def test_rules_are_deduplicated_sorted(self, analyses):
        rules = analyses["cl"].solution.rules_applied
        assert rules == sorted(set(rules))
