"""Edge cases of the Constraints Generator beyond the paper corpus."""

from typing import Any

import pytest

from repro.core import Verdict
from repro.core.report import build_report
from repro.core.sharding import ConstraintsGenerator
from repro.nf.api import NF, NfContext, StateDecl, StateKind
from repro.symbex import explore_nf

LAN, WAN = 0, 1


def solve(nf):
    return ConstraintsGenerator(build_report(nf, explore_nf(nf))).solve()


class _HashSharded(NF):
    """A map keyed by a hash of packet fields: footprint flows through."""

    name = "hash_sharded"
    ports = {"lan": LAN, "wan": WAN}

    def state(self):
        return [
            StateDecl("hs_map", StateKind.MAP, 1024),
            StateDecl("hs_chain", StateKind.DCHAIN, 1024),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        if port != LAN:
            ctx.forward(LAN)
        bucket = ctx.hash_value("bucket", [pkt.src_ip, pkt.dst_ip], 10)
        found, _ = ctx.map_get("hs_map", (bucket,))
        if ctx.cond(ctx.lnot(found)):
            ok, index = ctx.dchain_allocate("hs_chain")
            if ctx.cond(ok):
                ctx.map_put("hs_map", (bucket,), index)
        ctx.forward(WAN)


class _NamespacedKeys(NF):
    """Same map, two key namespaces distinguished by a constant tag.

    Keys ('0', src_ip) and ('1', dst_ip) can never collide, so they impose
    *no* cross-constraint — unlike the R3 dual-counter case.
    """

    name = "namespaced"
    ports = {"lan": LAN, "wan": WAN}

    def state(self):
        return [
            StateDecl("ns_map", StateKind.MAP, 1024),
            StateDecl("ns_chain", StateKind.DCHAIN, 1024),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        if port != LAN:
            ctx.forward(LAN)
        tag = ctx.const(0 if port == LAN else 1, 8)
        found, _ = ctx.map_get("ns_map", (tag, pkt.src_ip))
        if ctx.cond(ctx.lnot(found)):
            ok, index = ctx.dchain_allocate("ns_chain")
            if ctx.cond(ok):
                ctx.map_put("ns_map", (tag, pkt.src_ip), index)
        ctx.forward(WAN)


class _TimeKeyed(NF):
    """State keyed by (a function of) time: not packet-derived -> R4."""

    name = "time_keyed"
    ports = {"lan": LAN, "wan": WAN}

    def state(self):
        return [
            StateDecl("tk_map", StateKind.MAP, 64),
            StateDecl("tk_chain", StateKind.DCHAIN, 64),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        slot = ctx.now()
        found, _ = ctx.map_get("tk_map", (slot,))
        if ctx.cond(ctx.lnot(found)):
            ok, index = ctx.dchain_allocate("tk_chain")
            if ctx.cond(ok):
                ctx.map_put("tk_map", (slot,), index)
        ctx.forward(self.other_port(port))


class _TransformedField(NF):
    """Key is an arithmetic transform of one field: still that field."""

    name = "transformed"
    ports = {"lan": LAN, "wan": WAN}

    def state(self):
        return [
            StateDecl("tf_map", StateKind.MAP, 1024),
            StateDecl("tf_chain", StateKind.DCHAIN, 1024),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        if port != LAN:
            ctx.forward(LAN)
        shifted = ctx.sub(pkt.dst_port, ctx.const(1024, 16))
        found, _ = ctx.map_get("tf_map", (shifted,))
        if ctx.cond(ctx.lnot(found)):
            ok, index = ctx.dchain_allocate("tf_chain")
            if ctx.cond(ok):
                ctx.map_put("tf_map", (shifted,), index)
        ctx.forward(WAN)


class TestEdgeCases:
    def test_hash_keys_shard_on_their_footprint(self):
        solution = solve(_HashSharded())
        assert solution.verdict is Verdict.SHARED_NOTHING
        assert solution.per_port == {0: ("src_ip", "dst_ip")}

    def test_constant_namespaces_do_not_conflict(self):
        solution = solve(_NamespacedKeys())
        assert solution.verdict is Verdict.SHARED_NOTHING
        assert solution.per_port == {0: ("src_ip",)}

    def test_time_keyed_state_blocks_sharding(self):
        solution = solve(_TimeKeyed())
        assert solution.verdict is Verdict.LOCKS
        assert any("R4" in rule for rule in solution.rules_applied)

    def test_transformed_field_resolves_to_field(self):
        solution = solve(_TransformedField())
        assert solution.verdict is Verdict.SHARED_NOTHING
        assert solution.per_port == {0: ("dst_port",)}
