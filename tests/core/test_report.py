"""Stateful Report: construction and read-only filtering (§3.4)."""

from repro.core.report import build_report
from repro.nf.nfs import Firewall, Nop, StaticBridge
from repro.symbex import explore_nf


class TestBuildReport:
    def test_stateless_nf_yields_empty_report(self):
        nf = Nop()
        report = build_report(nf, explore_nf(nf))
        assert report.stateless
        assert not report.read_only_objects

    def test_read_only_objects_filtered(self):
        nf = StaticBridge(bindings={1: 0})
        report = build_report(nf, explore_nf(nf))
        assert report.stateless
        assert "sbr_macs" in report.read_only_objects

    def test_firewall_entries_present(self):
        nf = Firewall()
        report = build_report(nf, explore_nf(nf))
        assert not report.stateless
        assert "fw_flows" in report.objects()

    def test_maintenance_ops_excluded(self):
        nf = Firewall()
        report = build_report(nf, explore_nf(nf))
        ops = {entry.op for entry in report.entries}
        assert "expire" not in ops
        assert "dchain_rejuvenate" not in ops

    def test_entries_grouped_by_object(self):
        nf = Firewall()
        report = build_report(nf, explore_nf(nf))
        grouped = report.by_object()
        assert set(grouped) == report.objects()
        assert sum(len(v) for v in grouped.values()) == len(report.entries)

    def test_entry_constraints_snapshot(self):
        nf = Firewall()
        report = build_report(nf, explore_nf(nf))
        for entry in report.entries:
            assert len(entry.constraints()) == entry.entry.pc_len

    def test_describe_lists_entries(self):
        nf = Firewall()
        report = build_report(nf, explore_nf(nf))
        text = report.describe()
        assert "map_get(fw_flows" in text

    def test_describe_mentions_filtered(self):
        nf = StaticBridge(bindings={1: 0})
        report = build_report(nf, explore_nf(nf))
        assert "sbr_macs" in report.describe()
