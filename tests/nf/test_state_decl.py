"""StateDecl validation: bad declarations fail fast, naming the field."""

from __future__ import annotations

import pytest

from repro.errors import StateModelError
from repro.nf.api import NF, NfContext, StateDecl, StateKind, declared_state_names


def test_valid_decl_accepts_defaults() -> None:
    decl = StateDecl("ok_map", StateKind.MAP, 64)
    assert decl.sketch_depth == 5
    assert decl.value_layout == ()


def test_nonpositive_capacity_rejected() -> None:
    with pytest.raises(StateModelError, match="cap_map"):
        StateDecl("cap_map", StateKind.MAP, 0)


@pytest.mark.parametrize("depth", [0, -3])
def test_sketch_depth_must_be_at_least_one(depth: int) -> None:
    with pytest.raises(StateModelError, match="bad_sketch.*sketch_depth"):
        StateDecl("bad_sketch", StateKind.SKETCH, 64, sketch_depth=depth)


@pytest.mark.parametrize("width", [0, -8])
def test_value_layout_widths_must_be_positive(width: int) -> None:
    with pytest.raises(StateModelError, match="bad_vec.*'count'"):
        StateDecl(
            "bad_vec",
            StateKind.VECTOR,
            64,
            value_layout=(("count", width),),
        )


def test_mixed_valid_layout_still_names_the_culprit() -> None:
    with pytest.raises(StateModelError, match="'ttl'"):
        StateDecl(
            "mixed_vec",
            StateKind.VECTOR,
            64,
            value_layout=(("ip", 32), ("ttl", 0)),
        )


class _Dup(NF):
    name = "dup_state"
    ports = {"lan": 0, "wan": 1}

    def state(self) -> list[StateDecl]:
        return [
            StateDecl("twice", StateKind.MAP, 8),
            StateDecl("twice", StateKind.MAP, 8),
        ]

    def process(self, ctx: NfContext, port: int, pkt) -> None:
        ctx.drop()


def test_declared_state_names_flags_duplicates() -> None:
    with pytest.raises(StateModelError, match="twice"):
        declared_state_names(_Dup())


def test_declared_state_names_of_corpus_nf() -> None:
    from repro.nf.nfs import Firewall

    names = declared_state_names(Firewall())
    assert isinstance(names, frozenset)
    assert names  # the firewall certainly declares state
