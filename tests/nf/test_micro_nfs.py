"""Sequential behaviour of the Figure 2 micro-NFs + their R5 equivalence."""

import pytest

from repro.core import Maestro
from repro.nf.api import ActionKind
from repro.nf.nfs.micro import (
    DhcpGuard,
    DualCounter,
    FlowCounter,
    GlobalCounter,
    SrcStats,
)
from repro.nf.packet import Packet
from repro.nf.runtime import SequentialRunner
from repro.sim.equivalence import check_equivalence

LAN, WAN = 0, 1


class TestFlowCounter:
    def test_counts_per_flow(self):
        runner = SequentialRunner(FlowCounter())
        pkt = Packet(1, 2, 3, 4)
        for _ in range(3):
            out = runner.process(LAN, pkt)
            assert out.kind is ActionKind.FORWARD
        store = runner.store
        found, index = store["fc_counts"].get((1, 3, 2, 4))
        assert found
        assert store["fc_values"].borrow(index)["count"] == 3


class TestGlobalCounter:
    def test_every_packet_counted(self):
        runner = SequentialRunner(GlobalCounter())
        for i in range(5):
            runner.process(LAN, Packet(i, 2, 3, 4))
        assert runner.store["gc_total"].borrow(0)["count"] == 5


class TestDualCounter:
    def test_both_dimensions_tracked(self):
        runner = SequentialRunner(DualCounter())
        runner.process(LAN, Packet(src_ip=7, dst_ip=9, src_port=1, dst_port=1))
        assert runner.store["dc_srcs"].get((7,))[0]
        assert runner.store["dc_dsts"].get((9,))[0]


class TestDhcpGuardSemantics:
    def make(self):
        return SequentialRunner(DhcpGuard())

    def dhcp(self, mac, ip):
        return Packet(src_ip=ip, dst_ip=0xFFFFFFFF, src_port=68, dst_port=67,
                      src_mac=mac)

    def data(self, mac, ip):
        return Packet(src_ip=ip, dst_ip=0x08080808, src_port=5555,
                      dst_port=80, src_mac=mac)

    def test_unbound_mac_dropped(self):
        runner = self.make()
        assert runner.process(LAN, self.data(0xAA, 1)).kind is ActionKind.DROP

    def test_bound_mac_with_matching_ip_forwarded(self):
        runner = self.make()
        runner.process(LAN, self.dhcp(0xAA, 1))
        assert runner.process(LAN, self.data(0xAA, 1)).kind is ActionKind.FORWARD

    def test_spoofed_ip_dropped(self):
        runner = self.make()
        runner.process(LAN, self.dhcp(0xAA, 1))
        assert runner.process(LAN, self.data(0xAA, 2)).kind is ActionKind.DROP

    def test_rebinding_updates_ip(self):
        runner = self.make()
        runner.process(LAN, self.dhcp(0xAA, 1))
        runner.process(LAN, self.dhcp(0xAA, 9))
        assert runner.process(LAN, self.data(0xAA, 9)).kind is ActionKind.FORWARD
        assert runner.process(LAN, self.data(0xAA, 1)).kind is ActionKind.DROP


class TestDhcpGuardR5Equivalence:
    def test_parallel_equivalent_on_well_formed_traffic(self):
        """The R5 guarantee in action: sharding on src_ip (not the MAC the
        state is keyed by!) preserves behaviour, because a wrong-core
        lookup misses and drops exactly like a binding mismatch."""
        maestro = Maestro(seed=31)
        result = maestro.analyze(DhcpGuard())
        parallel = maestro.parallelize(DhcpGuard(), n_cores=4, result=result)
        trace = []
        semantics = TestDhcpGuardSemantics()
        for i in range(40):
            mac, ip = 0x1000 + i, 0x0A000000 + i
            trace.append((LAN, semantics.dhcp(mac, ip)))
            trace.append((LAN, semantics.data(mac, ip)))       # match
            trace.append((LAN, semantics.data(mac, ip + 1)))   # spoof: drop
            trace.append((LAN, semantics.data(0x9999, ip)))    # unbound: drop
        report = check_equivalence(DhcpGuard, parallel, trace)
        assert report.equivalent, report.describe()
