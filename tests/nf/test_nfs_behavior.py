"""Sequential behaviour of the 8-NF corpus (§6.1 semantics)."""

import pytest

from repro.nf.api import ActionKind
from repro.nf.nfs import (
    ConnectionLimiter,
    DynamicBridge,
    Firewall,
    LoadBalancer,
    Nat,
    Nop,
    Policer,
    PortScanDetector,
    StaticBridge,
)
from repro.nf.packet import Packet
from repro.nf.runtime import SequentialRunner

LAN, WAN = 0, 1


def pkt(src=0x0A000001, dst=0x08080808, sport=1000, dport=80, **kw) -> Packet:
    return Packet(src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport, **kw)


class TestNop:
    def test_forwards_both_ways(self):
        runner = SequentialRunner(Nop())
        assert runner.process(LAN, pkt()).port == WAN
        assert runner.process(WAN, pkt()).port == LAN


class TestPolicer:
    def make(self, rate=1000, burst=2000):
        return SequentialRunner(Policer(rate=rate, burst=burst))

    def test_uploads_unpoliced(self):
        runner = self.make()
        out = runner.process(LAN, pkt(wire_size=1500))
        assert out.kind is ActionKind.FORWARD and out.port == WAN

    def test_burst_allows_then_drops(self):
        runner = self.make(rate=0, burst=150)
        user = pkt(wire_size=100)
        assert runner.process(WAN, user, now=0.0).kind is ActionKind.FORWARD
        # Bucket now holds 50 tokens; a 100B packet must be dropped.
        assert runner.process(WAN, user, now=0.001).kind is ActionKind.DROP

    def test_refill_restores_allowance(self):
        runner = self.make(rate=1000, burst=100)
        user = pkt(wire_size=100)
        assert runner.process(WAN, user, now=0.0).kind is ActionKind.FORWARD
        assert runner.process(WAN, user, now=0.001).kind is ActionKind.DROP
        # After one second, 1000 B of tokens refilled (capped at burst).
        assert runner.process(WAN, user, now=1.1).kind is ActionKind.FORWARD

    def test_users_isolated(self):
        runner = self.make(rate=0, burst=100)
        a, b = pkt(dst=1, wire_size=100), pkt(dst=2, wire_size=100)
        assert runner.process(WAN, a, now=0.0).kind is ActionKind.FORWARD
        assert runner.process(WAN, a, now=0.001).kind is ActionKind.DROP
        assert runner.process(WAN, b, now=0.002).kind is ActionKind.FORWARD


class TestBridges:
    def test_dynamic_learns_and_forwards(self):
        runner = SequentialRunner(DynamicBridge())
        host_a = pkt().__class__(
            src_ip=1, dst_ip=2, src_port=1, dst_port=2,
            src_mac=0xAAAA, dst_mac=0xBBBB,
        )
        # Unknown destination: flood.
        assert runner.process(LAN, host_a).kind is ActionKind.FLOOD
        # Reply towards the learned MAC: forwarded to its port.
        reply = Packet(src_ip=2, dst_ip=1, src_port=2, dst_port=1,
                       src_mac=0xBBBB, dst_mac=0xAAAA)
        out = runner.process(WAN, reply)
        assert out.kind is ActionKind.FORWARD and out.port == LAN

    def test_dynamic_drops_same_segment(self):
        runner = SequentialRunner(DynamicBridge())
        a = Packet(src_ip=1, dst_ip=2, src_port=1, dst_port=1,
                   src_mac=0xAAAA, dst_mac=0xCCCC)
        runner.process(LAN, a)
        back = Packet(src_ip=2, dst_ip=1, src_port=1, dst_port=1,
                      src_mac=0xDDDD, dst_mac=0xAAAA)
        assert runner.process(LAN, back).kind is ActionKind.DROP

    def test_static_uses_bindings(self):
        runner = SequentialRunner(StaticBridge(bindings={0xBBBB: WAN}))
        out = runner.process(
            LAN, Packet(1, 2, 3, 4, src_mac=0xAAAA, dst_mac=0xBBBB)
        )
        assert out.kind is ActionKind.FORWARD and out.port == WAN

    def test_static_floods_unknown(self):
        runner = SequentialRunner(StaticBridge(bindings={}))
        out = runner.process(LAN, Packet(1, 2, 3, 4, dst_mac=0xEEEE))
        assert out.kind is ActionKind.FLOOD


class TestFirewall:
    def test_session_lifecycle(self):
        runner = SequentialRunner(Firewall())
        flow = pkt()
        assert runner.process(LAN, flow).port == WAN
        assert runner.process(WAN, flow.inverted()).port == LAN
        assert runner.process(WAN, pkt(src=0xDEAD)).kind is ActionKind.DROP

    def test_table_full_still_forwards_lan(self):
        runner = SequentialRunner(Firewall(capacity=1))
        assert runner.process(LAN, pkt(src=1)).port == WAN
        assert runner.process(LAN, pkt(src=2)).port == WAN  # untracked
        # ... but the untracked flow's reply is dropped.
        assert runner.process(WAN, pkt(src=2).inverted()).kind is ActionKind.DROP


class TestPsd:
    def test_blocks_beyond_threshold(self):
        runner = SequentialRunner(PortScanDetector(threshold=3))
        scanner = 0x0A000099
        outcomes = [
            runner.process(LAN, pkt(src=scanner, dport=port)).kind
            for port in range(1, 10)
        ]
        assert ActionKind.DROP in outcomes
        allowed = outcomes[: outcomes.index(ActionKind.DROP)]
        assert all(kind is ActionKind.FORWARD for kind in allowed)
        assert len(allowed) >= 3

    def test_repeat_ports_not_counted(self):
        runner = SequentialRunner(PortScanDetector(threshold=3))
        for _ in range(20):  # same port over and over: no scan
            out = runner.process(LAN, pkt(src=7, dport=443))
            assert out.kind is ActionKind.FORWARD

    def test_wan_traffic_unmonitored(self):
        runner = SequentialRunner(PortScanDetector(threshold=1))
        for port in range(50):
            assert runner.process(WAN, pkt(dport=port)).kind is ActionKind.FORWARD


class TestNat:
    def test_translation_roundtrip(self):
        nat = Nat(external_ip=0xC0A80101, port_base=1024)
        runner = SequentialRunner(nat)
        client = pkt(src=0x0A000002, dst=0x08080808, sport=3333, dport=80)
        out = runner.process(LAN, client)
        assert out.kind is ActionKind.FORWARD and out.port == WAN
        assert out.mods["src_ip"] == 0xC0A80101
        ext_port = out.mods["src_port"]
        reply = Packet(
            src_ip=0x08080808, dst_ip=0xC0A80101, src_port=80, dst_port=ext_port
        )
        back = runner.process(WAN, reply)
        assert back.kind is ActionKind.FORWARD and back.port == LAN
        assert back.mods["dst_ip"] == 0x0A000002
        assert back.mods["dst_port"] == 3333

    def test_rejects_spoofed_server(self):
        runner = SequentialRunner(Nat())
        out = runner.process(LAN, pkt(src=0x0A000002, dport=80))
        ext_port = out.mods["src_port"]
        spoof = Packet(
            src_ip=0xBADBAD, dst_ip=0xC0A80101, src_port=80, dst_port=ext_port
        )
        assert runner.process(WAN, spoof).kind is ActionKind.DROP

    def test_unknown_external_port_dropped(self):
        runner = SequentialRunner(Nat())
        stray = Packet(src_ip=1, dst_ip=0xC0A80101, src_port=80, dst_port=40000)
        assert runner.process(WAN, stray).kind is ActionKind.DROP

    def test_same_flow_keeps_port(self):
        runner = SequentialRunner(Nat())
        client = pkt(src=0x0A000002, dport=80)
        first = runner.process(LAN, client).mods["src_port"]
        second = runner.process(LAN, client).mods["src_port"]
        assert first == second


class TestLb:
    def test_flow_stickiness(self):
        runner = SequentialRunner(LoadBalancer())
        for beat in range(4):  # register backends
            runner.process(LAN, pkt(src=0x0A0000F0 + beat))
        flow = pkt(src=0x01020304, dport=80)
        first = runner.process(WAN, flow)
        assert first.kind is ActionKind.FORWARD
        backend = first.mods["dst_ip"]
        for _ in range(5):
            assert runner.process(WAN, flow).mods["dst_ip"] == backend

    def test_no_backends_drops(self):
        runner = SequentialRunner(LoadBalancer())
        assert runner.process(WAN, pkt()).kind is ActionKind.DROP

    def test_spreads_flows(self):
        runner = SequentialRunner(LoadBalancer())
        for beat in range(8):
            runner.process(LAN, pkt(src=0x0A0000F0 + beat))
        backends = {
            runner.process(WAN, pkt(src=i, sport=i % 50000 + 1)).mods["dst_ip"]
            for i in range(1, 200)
        }
        assert len(backends) > 1


class TestCl:
    def test_limits_connections_per_pair(self):
        runner = SequentialRunner(ConnectionLimiter(limit=5))
        client, server = 0x0A000002, 0x08080808
        outcomes = [
            runner.process(
                LAN, pkt(src=client, dst=server, sport=1000 + i)
            ).kind
            for i in range(20)
        ]
        assert ActionKind.DROP in outcomes
        assert outcomes[:5] == [ActionKind.FORWARD] * 5

    def test_existing_flow_not_recounted(self):
        runner = SequentialRunner(ConnectionLimiter(limit=2))
        flow = pkt(src=1, dst=2, sport=99)
        for _ in range(10):
            assert runner.process(LAN, flow).kind is ActionKind.FORWARD

    def test_reply_admitted_for_known_flow(self):
        runner = SequentialRunner(ConnectionLimiter(limit=5))
        flow = pkt(src=1, dst=2, sport=99)
        runner.process(LAN, flow)
        out = runner.process(WAN, flow.inverted())
        assert out.kind is ActionKind.FORWARD and out.port == LAN

    def test_unknown_reply_dropped(self):
        runner = SequentialRunner(ConnectionLimiter())
        assert runner.process(WAN, pkt()).kind is ActionKind.DROP

    def test_other_pairs_unaffected(self):
        runner = SequentialRunner(ConnectionLimiter(limit=1))
        runner.process(LAN, pkt(src=1, dst=2, sport=1))
        runner.process(LAN, pkt(src=1, dst=2, sport=2))  # may be dropped
        out = runner.process(LAN, pkt(src=3, dst=4, sport=1))
        assert out.kind is ActionKind.FORWARD
