"""The Table 1 data structures: map, vector, dchain, sketch."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StateModelError
from repro.nf.state import DChain, Map, Sketch, Vector, expire_flows


class TestMap:
    def test_get_miss(self):
        assert Map(4).get(("k",)) == (False, 0)

    def test_put_get_roundtrip(self):
        m = Map(4)
        assert m.put(("k",), 7)
        assert m.get(("k",)) == (True, 7)

    def test_capacity_enforced_for_new_keys(self):
        m = Map(2)
        assert m.put("a", 1) and m.put("b", 2)
        assert not m.put("c", 3)

    def test_update_allowed_at_capacity(self):
        m = Map(1)
        assert m.put("a", 1)
        assert m.put("a", 2)
        assert m.get("a") == (True, 2)

    def test_erase(self):
        m = Map(2)
        m.put("a", 1)
        assert m.erase("a")
        assert not m.erase("a")
        assert m.get("a") == (False, 0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(StateModelError):
            Map(0)

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers()), max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_matches_dict_semantics_under_capacity(self, ops):
        m = Map(1000)
        reference: dict = {}
        for key, value in ops:
            m.put(key, value)
            reference[key] = value
        for key, value in reference.items():
            assert m.get(key) == (True, value)


class TestVector:
    def test_layout_initialized(self):
        v = Vector(3, initial={"x": 0})
        assert v.borrow(0) == {"x": 0}

    def test_put_borrow(self):
        v = Vector(3)
        v.put(1, {"x": 9})
        assert v.borrow(1) == {"x": 9}

    def test_borrow_returns_copy(self):
        v = Vector(2, initial={"x": 1})
        record = v.borrow(0)
        record["x"] = 99
        assert v.borrow(0) == {"x": 1}

    def test_out_of_range(self):
        v = Vector(2)
        with pytest.raises(StateModelError):
            v.borrow(2)
        with pytest.raises(StateModelError):
            v.put(-1, {})


class TestDChain:
    def test_allocates_distinct_indices(self):
        chain = DChain(8)
        indices = [chain.allocate(0.0)[1] for _ in range(8)]
        assert sorted(indices) == list(range(8))

    def test_exhaustion(self):
        chain = DChain(2)
        chain.allocate(0.0)
        chain.allocate(0.0)
        assert chain.allocate(0.0) == (False, 0)

    def test_free_and_reallocate(self):
        chain = DChain(1)
        _, index = chain.allocate(0.0)
        assert chain.free_index(index)
        ok, again = chain.allocate(1.0)
        assert ok and again == index

    def test_rejuvenate_refreshes(self):
        chain = DChain(2)
        _, index = chain.allocate(0.0)
        assert chain.rejuvenate(index, 5.0)
        assert chain.last_touched(index) == 5.0

    def test_rejuvenate_unallocated_fails(self):
        assert not DChain(2).rejuvenate(0, 1.0)

    def test_expire_frees_only_stale(self):
        chain = DChain(4)
        _, old = chain.allocate(0.0)
        _, fresh = chain.allocate(10.0)
        expired = chain.expire(threshold=5.0)
        assert expired == [old]
        assert not chain.is_allocated(old)
        assert chain.is_allocated(fresh)

    @given(st.lists(st.sampled_from(["alloc", "free", "expire"]), max_size=80))
    @settings(max_examples=30, deadline=None)
    def test_never_double_allocates(self, ops):
        chain = DChain(8)
        live: set[int] = set()
        now = 0.0
        for op in ops:
            now += 1.0
            if op == "alloc":
                ok, index = chain.allocate(now)
                if ok:
                    assert index not in live
                    live.add(index)
            elif op == "free" and live:
                index = live.pop()
                assert chain.free_index(index)
            elif op == "expire":
                for index in chain.expire(now - 10):
                    live.discard(index)
        assert chain.allocated_count() == len(live)


class TestSketch:
    def test_initial_count_zero(self):
        assert Sketch(64).fetch(("a",)) == 0

    def test_touch_increments(self):
        sketch = Sketch(64)
        for _ in range(5):
            sketch.touch(("a",))
        assert sketch.fetch(("a",)) >= 5

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_never_undercounts(self, keys):
        sketch = Sketch(256, depth=5)
        true_counts: dict[int, int] = {}
        for key in keys:
            sketch.touch(key)
            true_counts[key] = true_counts.get(key, 0) + 1
        for key, count in true_counts.items():
            assert sketch.fetch(key) >= count

    def test_reset(self):
        sketch = Sketch(64)
        sketch.touch("a", amount=3)
        sketch.reset()
        assert sketch.fetch("a") == 0

    def test_depth_default_matches_paper(self):
        # "indexing a configurable number of entries based on different
        # hashes (5 by default in our case)" (§6.1, CL)
        assert Sketch(100).depth == 5


class TestExpireFlows:
    def test_triad_expiry(self):
        flow_map, chain, vector = Map(4), DChain(4), Vector(4)
        index_to_key = {}
        for i, key in enumerate(["a", "b"]):
            _, index = chain.allocate(float(i))
            flow_map.put(key, index)
            index_to_key[index] = key
        expired = expire_flows(flow_map, chain, vector, index_to_key, threshold=0.5)
        assert expired == 1
        assert flow_map.get("a") == (False, 0)
        assert flow_map.get("b")[0]
