"""Packet model: fields, inversion, serialization, symbolic view."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nf.packet import (
    PACKET_FIELDS,
    Packet,
    SymbolicPacket,
    field_symbol,
)

ips = st.integers(0, 2**32 - 1)
ports = st.integers(0, 2**16 - 1)


class TestPacket:
    def test_field_access(self):
        pkt = Packet(src_ip=1, dst_ip=2, src_port=3, dst_port=4)
        assert pkt.field("src_ip") == 1
        assert pkt.field("dst_port") == 4

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            Packet(1, 2, 3, 4).field("ttl")

    def test_inverted_swaps(self):
        pkt = Packet(src_ip=1, dst_ip=2, src_port=3, dst_port=4)
        inv = pkt.inverted()
        assert (inv.src_ip, inv.dst_ip, inv.src_port, inv.dst_port) == (2, 1, 4, 3)
        assert inv.inverted() == pkt

    def test_env_names_match_symbols(self):
        pkt = Packet(1, 2, 3, 4)
        env = pkt.env()
        assert set(env) == {f"pkt.{name}" for name in PACKET_FIELDS}

    def test_flow_tuple(self):
        pkt = Packet(1, 2, 3, 4, proto=6)
        assert pkt.flow_tuple() == (1, 2, 3, 4, 6)

    @given(ips, ips, ports, ports, st.sampled_from([64, 128, 1500]))
    @settings(max_examples=40, deadline=None)
    def test_serialization_roundtrip(self, src, dst, sport, dport, size):
        pkt = Packet(src, dst, sport, dport, wire_size=size)
        parsed = Packet.from_bytes(pkt.to_bytes())
        assert (parsed.src_ip, parsed.dst_ip) == (src, dst)
        assert (parsed.src_port, parsed.dst_port) == (sport, dport)
        assert parsed.wire_size == max(size, 64)

    def test_frame_too_short_rejected(self):
        with pytest.raises(ValueError):
            Packet.from_bytes(b"\x00" * 10)


class TestSymbolicView:
    def test_fields_are_canonical_symbols(self):
        sym_pkt = SymbolicPacket()
        assert sym_pkt.src_ip == field_symbol("src_ip")
        assert sym_pkt.src_ip.width == 32
        assert sym_pkt.src_port.width == 16
        assert sym_pkt.src_mac.width == 48

    def test_wire_size_exposed(self):
        assert SymbolicPacket().wire_size.name == "pkt.wire_size"

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            SymbolicPacket().ttl

    def test_field_symbol_rejects_unknown(self):
        with pytest.raises(KeyError):
            field_symbol("nope")
