"""Concrete runtime: op recording, expiry, packet results."""

import pytest

from repro.errors import SimulationError, StateModelError
from repro.nf.api import ActionKind, StateDecl, StateKind, NF
from repro.nf.nfs import Firewall
from repro.nf.packet import Packet
from repro.nf.runtime import SequentialRunner, StateStore


def fw_packet(i: int = 0) -> Packet:
    return Packet(src_ip=100 + i, dst_ip=200 + i, src_port=10, dst_port=20)


class TestStateStore:
    def test_builds_all_kinds(self):
        decls = [
            StateDecl("m", StateKind.MAP, 8),
            StateDecl("v", StateKind.VECTOR, 8, value_layout=(("x", 32),)),
            StateDecl("c", StateKind.DCHAIN, 8),
            StateDecl("s", StateKind.SKETCH, 64),
        ]
        store = StateStore(decls)
        for name in "mvcs":
            assert store[name] is not None

    def test_scale_divides_capacity(self):
        store = StateStore([StateDecl("m", StateKind.MAP, 64)], scale=4)
        assert store["m"].capacity == 16

    def test_read_only_not_scaled(self):
        decls = [StateDecl("t", StateKind.MAP, 64, read_only=True)]
        store = StateStore(decls, scale=4)
        assert store["t"].capacity == 64

    def test_undeclared_object_rejected(self):
        store = StateStore([])
        with pytest.raises(StateModelError):
            store["nope"]

    def test_invalid_scale(self):
        with pytest.raises(SimulationError):
            StateStore([], scale=0)


class TestSequentialRunner:
    def test_firewall_admits_reply(self):
        runner = SequentialRunner(Firewall())
        pkt = fw_packet()
        out = runner.process(0, pkt)
        assert out.kind is ActionKind.FORWARD and out.port == 1
        reply = runner.process(1, pkt.inverted())
        assert reply.kind is ActionKind.FORWARD and reply.port == 0

    def test_firewall_drops_unsolicited(self):
        runner = SequentialRunner(Firewall())
        assert runner.process(1, fw_packet()).kind is ActionKind.DROP

    def test_ops_recorded(self):
        runner = SequentialRunner(Firewall())
        out = runner.process(0, fw_packet())
        names = [op.op for op in out.ops]
        assert "map_get" in names and "map_put" in names
        assert out.new_flow
        assert out.writes >= 2  # allocate + put (+ vector)

    def test_established_flow_reads_mostly(self):
        runner = SequentialRunner(Firewall())
        pkt = fw_packet()
        runner.process(0, pkt)
        again = runner.process(0, pkt)
        assert not again.new_flow
        hard_writes = [
            op for op in again.ops
            if op.write and op.op not in ("dchain_rejuvenate", "expire")
        ]
        assert not hard_writes

    def test_expiry_forgets_flows(self):
        runner = SequentialRunner(Firewall(expiration_time=10.0))
        pkt = fw_packet()
        runner.process(0, pkt, now=0.0)
        # Flow expires; reply afterwards must be dropped.
        out = runner.process(1, pkt.inverted(), now=100.0)
        assert out.kind is ActionKind.DROP

    def test_rejuvenation_keeps_flow_alive(self):
        runner = SequentialRunner(Firewall(expiration_time=10.0))
        pkt = fw_packet()
        for step in range(6):
            runner.process(0, pkt, now=step * 8.0)
        out = runner.process(1, pkt.inverted(), now=47.0)
        assert out.kind is ActionKind.FORWARD

    def test_state_scale_shrinks_tables(self):
        runner = SequentialRunner(Firewall(capacity=64), state_scale=8)
        assert runner.store["fw_flows"].capacity == 8

    def test_missing_packet_op_raises(self):
        class Silent(NF):
            name = "silent"
            ports = {"a": 0, "b": 1}

            def state(self):
                return []

            def process(self, ctx, port, pkt):
                return None

        runner = SequentialRunner(Silent())
        with pytest.raises(SimulationError):
            runner.process(0, fw_packet())

    def test_set_field_validates_names(self):
        class BadRewriter(NF):
            name = "bad"
            ports = {"a": 0, "b": 1}

            def state(self):
                return []

            def process(self, ctx, port, pkt):
                ctx.set_field("ttl", 1)
                ctx.drop()

        runner = SequentialRunner(BadRewriter())
        with pytest.raises(StateModelError):
            runner.process(0, fw_packet())

    def test_observable_tuple_stable(self):
        runner = SequentialRunner(Firewall())
        out = runner.process(0, fw_packet())
        assert out.observable() == (ActionKind.FORWARD, 1, ())
