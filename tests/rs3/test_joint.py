"""Joint RSS key search: compilation, solving, batch-hash verification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sharding import PairMap
from repro.errors import RssUnsatisfiableError
from repro.rs3 import (
    E810,
    IPV4_TCP,
    CancelField,
    KeySearchStats,
    MapFields,
    RssConfiguration,
    RssField,
    compile_joint,
    solve_joint,
    verify_joint_steering,
)

SWAP_PAIR = PairMap(
    port_a=0,
    port_b=1,
    field_map=(("src_ip", "dst_ip"), ("dst_ip", "src_ip")),
)


def test_compile_joint_cancels_non_active_fields_and_frees_ports() -> None:
    compilation = compile_joint(
        [0, 1, 2],
        {0: ("src_ip", "dst_ip"), 1: ("src_ip", "dst_ip")},
        [SWAP_PAIR],
        E810,
    )
    assert compilation.free_ports == [2]
    assert set(compilation.port_options) == {0, 1, 2}
    cancels = [r for r in compilation.requirements if isinstance(r, CancelField)]
    cancelled = {(r.port, r.field) for r in cancels}
    # src/dst ports must hash to zero on both constrained ports
    for port in (0, 1):
        assert (port, RssField.SRC_PORT) in cancelled
        assert (port, RssField.DST_PORT) in cancelled
    maps = [r for r in compilation.requirements if isinstance(r, MapFields)]
    assert len(maps) == 2  # the swap, deduplicated


def test_compile_joint_deduplicates_repeated_lifted_pairs() -> None:
    compilation = compile_joint(
        [0, 1],
        {0: ("src_ip",), 1: ("dst_ip",)},
        [
            PairMap(port_a=0, port_b=1, field_map=(("src_ip", "dst_ip"),)),
            PairMap(port_a=0, port_b=1, field_map=(("src_ip", "dst_ip"),)),
        ],
        E810,
    )
    maps = [r for r in compilation.requirements if isinstance(r, MapFields)]
    assert len(maps) == 1


def test_compile_joint_rejects_non_rss_fields() -> None:
    with pytest.raises(RssUnsatisfiableError, match="not RSS-hashable"):
        compile_joint([0], {0: ("ttl",)}, [], E810)


def test_solve_joint_satisfies_the_composed_system() -> None:
    compilation = compile_joint(
        [0, 1],
        {0: ("src_ip", "dst_ip"), 1: ("src_ip", "dst_ip")},
        [SWAP_PAIR],
        E810,
    )
    stats = KeySearchStats()
    keys = solve_joint(
        compilation, E810, n_queues=4,
        rng=np.random.default_rng(11), stats=stats,
    )
    assert set(keys) == {0, 1}
    assert stats.attempts >= 1
    rss = RssConfiguration.build(keys, compilation.port_options, 4)
    verify_joint_steering(rss, [SWAP_PAIR], samples=128)


def test_verify_joint_steering_catches_uncoordinated_keys() -> None:
    # Two independent random keys cannot satisfy the swap pair map.
    rng = np.random.default_rng(3)
    keys = {port: bytes(rng.integers(0, 256, size=52, dtype=np.uint8)) for port in (0, 1)}
    rss = RssConfiguration.build(keys, {0: IPV4_TCP, 1: IPV4_TCP}, 4)
    with pytest.raises(RssUnsatisfiableError, match="joint steering"):
        verify_joint_steering(rss, [SWAP_PAIR], samples=64)
