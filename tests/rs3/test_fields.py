"""RSS field sets and NIC capability models."""

import pytest

from repro.errors import NicCapabilityError
from repro.rs3.fields import (
    E810,
    IPV4_ONLY,
    IPV4_TCP,
    PERMISSIVE_NIC,
    FieldSetOption,
    RssField,
)


class TestFieldSetOption:
    def test_layout_offsets(self):
        offsets = IPV4_TCP.offsets()
        assert offsets[RssField.SRC_IP] == 0
        assert offsets[RssField.DST_IP] == 32
        assert offsets[RssField.SRC_PORT] == 64
        assert offsets[RssField.DST_PORT] == 80

    def test_input_size(self):
        assert IPV4_TCP.input_bits == 96
        assert IPV4_TCP.input_bytes == 12
        assert IPV4_ONLY.input_bytes == 8

    def test_bit_positions(self):
        positions = IPV4_TCP.bit_positions(RssField.DST_PORT)
        assert positions == range(80, 96)

    def test_field_widths(self):
        assert RssField.SRC_IP.width == 32
        assert RssField.DST_PORT.width == 16

    def test_packet_field_names_canonical(self):
        assert RssField.SRC_IP.packet_field == "src_ip"


class TestNicModels:
    def test_e810_key_geometry(self):
        # Footnote 3: 52-byte key for the Intel E810.
        assert E810.key_bytes == 52
        assert E810.reta_size == 512

    def test_e810_lacks_ip_only(self):
        """The paper's policer story: 'Although DPDK allows RSS packet
        field options containing only IP addresses, our NICs do not
        support this option' — so sharding on dst_ip alone must go through
        the full-tuple option (and cancel the extra fields in the key)."""
        option = E810.best_option_for(frozenset({RssField.DST_IP}))
        assert option is IPV4_TCP
        assert PERMISSIVE_NIC.best_option_for(
            frozenset({RssField.DST_IP})
        ) is IPV4_ONLY

    def test_uncoverable_fields_raise(self):
        class Fake:
            pass

        with pytest.raises(NicCapabilityError):
            # An empty-option NIC covers nothing.
            from repro.rs3.fields import NicModel

            NicModel("none", options=()).best_option_for(
                frozenset({RssField.SRC_IP})
            )

    def test_best_option_prefers_smallest(self):
        option = PERMISSIVE_NIC.best_option_for(
            frozenset({RssField.SRC_IP, RssField.DST_IP})
        )
        assert option is IPV4_ONLY

    def test_supports_exactly(self):
        assert PERMISSIVE_NIC.supports_exactly(
            frozenset({RssField.SRC_IP, RssField.DST_IP})
        )
        assert not E810.supports_exactly(
            frozenset({RssField.SRC_IP, RssField.DST_IP})
        )
