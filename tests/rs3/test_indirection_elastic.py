"""Elastic edge cases of the indirection table and the rescale planner.

The reprogram/retarget primitives must behave at the extremes the
elastic controller can reach: shrinking to a single core, growing past
the bucket count, and committing a plan that changes nothing.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.rs3.indirection import IndirectionTable
from repro.scale import plan_rescale


class TestReprogram:
    def test_noop_reprogram_keeps_generation(self):
        table = IndirectionTable(n_queues=4)
        gen = table.generation
        moved = table.reprogram(table.entries.copy())
        assert moved == 0
        assert table.generation == gen

    def test_real_reprogram_bumps_generation_once(self):
        table = IndirectionTable(n_queues=4)
        gen = table.generation
        entries = table.entries.copy()
        entries[: table.size // 2] = 5
        moved = table.reprogram(entries)
        assert moved == table.size // 2
        assert table.generation == gen + 1

    def test_rejects_wrong_shape(self):
        table = IndirectionTable(n_queues=4)
        with pytest.raises(SimulationError, match="entries"):
            table.reprogram(np.zeros(7, dtype=np.int64))

    def test_rejects_negative_entries(self):
        table = IndirectionTable(n_queues=4)
        entries = table.entries.copy()
        entries[0] = -1
        with pytest.raises(SimulationError, match="non-negative"):
            table.reprogram(entries)

    def test_retarget_requires_positive_queues(self):
        table = IndirectionTable(n_queues=4)
        with pytest.raises(SimulationError):
            table.retarget(0)
        table.retarget(9)
        assert table.n_queues == 9


class TestShrinkToOne:
    def test_plan_collapses_everything_onto_core_zero(self):
        table = IndirectionTable(n_queues=8)
        entries, moves = plan_rescale(table, 1)
        assert set(entries.tolist()) == {0}
        # Every slot not already on core 0 moves exactly once.
        assert len(moves) == int((table.entries != 0).sum())
        assert all(dst == 0 for _slot, _src, dst in moves)

    def test_single_core_table_still_steers(self):
        table = IndirectionTable(n_queues=8)
        entries, _ = plan_rescale(table, 1)
        table.reprogram(entries)
        table.retarget(1)
        hashes = np.arange(10_000, dtype=np.int64) * 2654435761
        assert set(table.steer_batch(hashes).tolist()) == {0}


class TestGrowPastBuckets:
    def test_surplus_cores_own_zero_buckets(self):
        table = IndirectionTable(n_queues=4, size=64)
        entries, moves = plan_rescale(table, 100)
        counts = np.bincount(entries, minlength=100)
        assert counts.sum() == 64
        # 64 buckets over 100 cores: the first 64 cores own one each,
        # the rest legally own none.
        assert counts.max() == 1
        assert int((counts == 0).sum()) == 36
        table.reprogram(entries)
        table.retarget(100)
        assert table.n_queues == 100

    def test_plan_is_minimal_even_past_buckets(self):
        table = IndirectionTable(n_queues=4, size=64)
        _entries, moves = plan_rescale(table, 100)
        # Survivors keep their fair share (0 remainder -> floor 0, +1 for
        # the first 64): each of cores 0..3 keeps exactly one slot.
        kept = {src for _slot, src, _dst in moves}
        assert len(moves) == 60
        assert kept <= {0, 1, 2, 3}


class TestNoopPlanCommit:
    def test_noop_plan_commit_is_invisible(self):
        """plan + reprogram + retarget at the same width changes nothing."""
        table = IndirectionTable(n_queues=6)
        before = table.entries.copy()
        gen = table.generation
        entries, moves = plan_rescale(table, 6)
        assert moves == []
        assert table.reprogram(entries) == 0
        table.retarget(6)
        assert table.generation == gen
        assert np.array_equal(table.entries, before)

    def test_grow_then_shrink_back_restores_counts(self):
        table = IndirectionTable(n_queues=4)
        entries, _ = plan_rescale(table, 8)
        table.reprogram(entries)
        table.retarget(8)
        entries, _ = plan_rescale(table, 4)
        table.reprogram(entries)
        table.retarget(4)
        counts = np.bincount(table.entries, minlength=4)
        assert counts.tolist() == [128] * 4
