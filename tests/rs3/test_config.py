"""RssConfiguration: per-port steering and table balancing."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.nf.packet import Packet
from repro.rs3.config import RssConfiguration
from repro.rs3.fields import IPV4_TCP
from repro.rs3.toeplitz import MICROSOFT_TEST_KEY


def make_config(n_queues: int = 4) -> RssConfiguration:
    key = (MICROSOFT_TEST_KEY + bytes(12))[:52]
    return RssConfiguration.build(
        keys={0: key, 1: key},
        options={0: IPV4_TCP, 1: IPV4_TCP},
        n_queues=n_queues,
    )


class TestBuild:
    def test_ports_configured(self):
        config = make_config()
        assert set(config.ports) == {0, 1}
        assert config.n_queues == 4

    def test_mismatched_ports_rejected(self):
        key = bytes(52)
        with pytest.raises(SimulationError):
            RssConfiguration.build(
                keys={0: key}, options={0: IPV4_TCP, 1: IPV4_TCP}, n_queues=2
            )

    def test_key_hex_renders(self):
        config = make_config()
        assert config.ports[0].key_hex().count(":") == 51


class TestSteering:
    def test_same_packet_same_core(self):
        config = make_config()
        pkt = Packet(1, 2, 3, 4)
        assert config.core_for(0, pkt) == config.core_for(0, pkt)

    def test_unknown_port_rejected(self):
        with pytest.raises(SimulationError):
            make_config().core_for(9, Packet(1, 2, 3, 4))

    def test_cores_in_range(self):
        config = make_config(n_queues=6)
        rng = np.random.default_rng(1)
        for _ in range(100):
            pkt = Packet(
                int(rng.integers(2**32)),
                int(rng.integers(2**32)),
                int(rng.integers(2**16)),
                int(rng.integers(2**16)),
            )
            assert 0 <= config.core_for(0, pkt) < 6


class TestBalancing:
    def test_balance_tables_reduces_skew(self):
        config = make_config(n_queues=4)
        rng = np.random.default_rng(8)
        # Heavy-hitter trace: one flow dominates.
        heavy = Packet(10, 20, 30, 40)
        trace = [(0, heavy)] * 500 + [
            (0, Packet(int(rng.integers(2**32)), 2, 3, 4)) for _ in range(500)
        ]

        def max_share() -> float:
            counts = np.zeros(4)
            for port, pkt in trace:
                counts[config.core_for(port, pkt)] += 1
            return counts.max() / counts.sum()

        before = max_share()
        config.balance_tables(trace)
        after = max_share()
        assert after <= before
