"""Toeplitz hash: bit-exactness and algebraic properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nf.packet import Packet
from repro.rs3.fields import IPV4_ONLY, IPV4_TCP
from repro.rs3.toeplitz import (
    MICROSOFT_TEST_KEY,
    hash_input,
    hash_packet,
    key_bit,
    toeplitz_hash,
)


def ip(dotted: str) -> int:
    a, b, c, d = map(int, dotted.split("."))
    return (a << 24) | (b << 16) | (c << 8) | d


#: The official Microsoft RSS verification suite:
#: (dst, dst_port, src, src_port, ipv4-only hash, ipv4+tcp hash)
MS_VECTORS = [
    ("161.142.100.80", 1766, "66.9.149.187", 2794, 0x323E8FC2, 0x51CCC178),
    ("65.69.140.83", 4739, "199.92.111.2", 14230, 0xD718262A, 0xC626B0EA),
    ("12.22.207.184", 38024, "24.19.198.95", 12898, 0xD2D0A5DE, 0x5C2B394A),
    ("209.142.163.6", 2217, "38.27.205.30", 48228, 0x82989176, 0xAFC7327F),
    ("202.188.127.2", 1303, "153.39.163.191", 44251, 0x5D1809C5, 0x10E828A2),
]


class TestMicrosoftVectors:
    @pytest.mark.parametrize("dst,dport,src,sport,h_ip,h_tcp", MS_VECTORS)
    def test_ipv4_only(self, dst, dport, src, sport, h_ip, h_tcp):
        pkt = Packet(src_ip=ip(src), dst_ip=ip(dst), src_port=sport, dst_port=dport)
        assert hash_packet(MICROSOFT_TEST_KEY, pkt, IPV4_ONLY) == h_ip

    @pytest.mark.parametrize("dst,dport,src,sport,h_ip,h_tcp", MS_VECTORS)
    def test_ipv4_tcp(self, dst, dport, src, sport, h_ip, h_tcp):
        pkt = Packet(src_ip=ip(src), dst_ip=ip(dst), src_port=sport, dst_port=dport)
        assert hash_packet(MICROSOFT_TEST_KEY, pkt, IPV4_TCP) == h_tcp


class TestProperties:
    def test_key_too_short_rejected(self):
        with pytest.raises(ValueError):
            toeplitz_hash(bytes(4), bytes(8))

    def test_zero_input_hashes_to_zero(self):
        assert toeplitz_hash(MICROSOFT_TEST_KEY, bytes(12)) == 0

    def test_zero_key_hashes_to_zero(self):
        assert toeplitz_hash(bytes(52), b"\xff" * 12) == 0

    @given(st.binary(min_size=12, max_size=12), st.binary(min_size=12, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_linearity_in_input(self, d1, d2):
        """h(k, d1 ^ d2) == h(k, d1) ^ h(k, d2): the GF(2) linearity the
        key solver's soundness rests on."""
        xored = bytes(a ^ b for a, b in zip(d1, d2))
        assert toeplitz_hash(MICROSOFT_TEST_KEY, xored) == toeplitz_hash(
            MICROSOFT_TEST_KEY, d1
        ) ^ toeplitz_hash(MICROSOFT_TEST_KEY, d2)

    @given(st.integers(0, 95), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_single_bit_input_selects_key_window(self, bit, _seed):
        """Setting only input bit i yields key window [i, i+31] — the
        definition Equation (1) encodes."""
        data = bytearray(12)
        data[bit // 8] |= 1 << (7 - bit % 8)
        expected = 0
        for offset in range(32):
            expected = (expected << 1) | key_bit(MICROSOFT_TEST_KEY, bit + offset)
        assert toeplitz_hash(MICROSOFT_TEST_KEY, bytes(data)) == expected

    def test_key_bit_msb_first(self):
        key = bytes([0b10000001])
        assert key_bit(key, 0) == 1
        assert key_bit(key, 7) == 1
        assert key_bit(key, 1) == 0


class TestHashInput:
    def test_layout_src_dst_ports(self):
        pkt = Packet(
            src_ip=0x01020304, dst_ip=0x05060708, src_port=0x0A0B, dst_port=0x0C0D
        )
        data = hash_input(pkt, IPV4_TCP)
        assert data == bytes(
            [1, 2, 3, 4, 5, 6, 7, 8, 0x0A, 0x0B, 0x0C, 0x0D]
        )

    def test_ip_only_is_8_bytes(self):
        pkt = Packet(1, 2, 3, 4)
        assert len(hash_input(pkt, IPV4_ONLY)) == 8
