"""Toeplitz hash: bit-exactness and algebraic properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nf.packet import Packet
from repro.rs3.fields import IPV4_ONLY, IPV4_TCP, IPV4_UDP
from repro.rs3.toeplitz import (
    MICROSOFT_TEST_KEY,
    hash_input,
    hash_input_matrix,
    hash_packet,
    hash_packets_batch,
    key_bit,
    toeplitz_hash,
    toeplitz_hash_batch,
)


def ip(dotted: str) -> int:
    a, b, c, d = map(int, dotted.split("."))
    return (a << 24) | (b << 16) | (c << 8) | d


#: The official Microsoft RSS verification suite:
#: (dst, dst_port, src, src_port, ipv4-only hash, ipv4+tcp hash)
MS_VECTORS = [
    ("161.142.100.80", 1766, "66.9.149.187", 2794, 0x323E8FC2, 0x51CCC178),
    ("65.69.140.83", 4739, "199.92.111.2", 14230, 0xD718262A, 0xC626B0EA),
    ("12.22.207.184", 38024, "24.19.198.95", 12898, 0xD2D0A5DE, 0x5C2B394A),
    ("209.142.163.6", 2217, "38.27.205.30", 48228, 0x82989176, 0xAFC7327F),
    ("202.188.127.2", 1303, "153.39.163.191", 44251, 0x5D1809C5, 0x10E828A2),
]


class TestMicrosoftVectors:
    @pytest.mark.parametrize("dst,dport,src,sport,h_ip,h_tcp", MS_VECTORS)
    def test_ipv4_only(self, dst, dport, src, sport, h_ip, h_tcp):
        pkt = Packet(src_ip=ip(src), dst_ip=ip(dst), src_port=sport, dst_port=dport)
        assert hash_packet(MICROSOFT_TEST_KEY, pkt, IPV4_ONLY) == h_ip

    @pytest.mark.parametrize("dst,dport,src,sport,h_ip,h_tcp", MS_VECTORS)
    def test_ipv4_tcp(self, dst, dport, src, sport, h_ip, h_tcp):
        pkt = Packet(src_ip=ip(src), dst_ip=ip(dst), src_port=sport, dst_port=dport)
        assert hash_packet(MICROSOFT_TEST_KEY, pkt, IPV4_TCP) == h_tcp


class TestProperties:
    def test_key_too_short_rejected(self):
        with pytest.raises(ValueError):
            toeplitz_hash(bytes(4), bytes(8))

    def test_zero_input_hashes_to_zero(self):
        assert toeplitz_hash(MICROSOFT_TEST_KEY, bytes(12)) == 0

    def test_zero_key_hashes_to_zero(self):
        assert toeplitz_hash(bytes(52), b"\xff" * 12) == 0

    @given(st.binary(min_size=12, max_size=12), st.binary(min_size=12, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_linearity_in_input(self, d1, d2):
        """h(k, d1 ^ d2) == h(k, d1) ^ h(k, d2): the GF(2) linearity the
        key solver's soundness rests on."""
        xored = bytes(a ^ b for a, b in zip(d1, d2))
        assert toeplitz_hash(MICROSOFT_TEST_KEY, xored) == toeplitz_hash(
            MICROSOFT_TEST_KEY, d1
        ) ^ toeplitz_hash(MICROSOFT_TEST_KEY, d2)

    @given(st.integers(0, 95), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_single_bit_input_selects_key_window(self, bit, _seed):
        """Setting only input bit i yields key window [i, i+31] — the
        definition Equation (1) encodes."""
        data = bytearray(12)
        data[bit // 8] |= 1 << (7 - bit % 8)
        expected = 0
        for offset in range(32):
            expected = (expected << 1) | key_bit(MICROSOFT_TEST_KEY, bit + offset)
        assert toeplitz_hash(MICROSOFT_TEST_KEY, bytes(data)) == expected

    def test_key_bit_msb_first(self):
        key = bytes([0b10000001])
        assert key_bit(key, 0) == 1
        assert key_bit(key, 7) == 1
        assert key_bit(key, 1) == 0


class TestHashInput:
    def test_layout_src_dst_ports(self):
        pkt = Packet(
            src_ip=0x01020304, dst_ip=0x05060708, src_port=0x0A0B, dst_port=0x0C0D
        )
        data = hash_input(pkt, IPV4_TCP)
        assert data == bytes(
            [1, 2, 3, 4, 5, 6, 7, 8, 0x0A, 0x0B, 0x0C, 0x0D]
        )

    def test_ip_only_is_8_bytes(self):
        pkt = Packet(1, 2, 3, 4)
        assert len(hash_input(pkt, IPV4_ONLY)) == 8


def random_packets(seed: int, n: int) -> list[Packet]:
    rng = np.random.default_rng(seed)
    return [
        Packet(
            src_ip=int(rng.integers(0, 2**32)),
            dst_ip=int(rng.integers(0, 2**32)),
            src_port=int(rng.integers(0, 2**16)),
            dst_port=int(rng.integers(0, 2**16)),
        )
        for _ in range(n)
    ]


class TestWindowBounds:
    """The key must provide a full 32-bit window for every input bit."""

    def test_exact_boundary_accepted(self):
        # len(key)*8 == len(data)*8 + 32: the last input bit's window ends
        # exactly on the key's last bit.
        key, data = bytes(range(8)), bytes(range(4))
        assert len(key) * 8 == len(data) * 8 + 32
        assert toeplitz_hash(key, data) == toeplitz_hash_batch(
            key, np.frombuffer(data, dtype=np.uint8).reshape(1, -1)
        )[0]

    def test_one_byte_over_rejected_with_clear_error(self):
        key, data = bytes(range(8)), bytes(range(5))
        with pytest.raises(ValueError, match="key too short"):
            toeplitz_hash(key, data)
        with pytest.raises(ValueError, match="need len\\(key\\)\\*8"):
            toeplitz_hash_batch(
                key, np.frombuffer(data, dtype=np.uint8).reshape(1, -1)
            )

    def test_batch_requires_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            toeplitz_hash_batch(MICROSOFT_TEST_KEY, np.zeros(12, dtype=np.uint8))

    def test_batch_empty_rows_and_columns(self):
        empty_rows = toeplitz_hash_batch(
            MICROSOFT_TEST_KEY, np.zeros((0, 12), dtype=np.uint8)
        )
        assert empty_rows.shape == (0,)
        zero_width = toeplitz_hash_batch(
            MICROSOFT_TEST_KEY, np.zeros((3, 0), dtype=np.uint8)
        )
        assert zero_width.tolist() == [0, 0, 0]


class TestBatchMatchesScalar:
    """The vectorized path must be bit-identical to the scalar oracle."""

    @pytest.mark.parametrize("dst,dport,src,sport,h_ip,h_tcp", MS_VECTORS)
    def test_microsoft_vectors_batched(self, dst, dport, src, sport, h_ip, h_tcp):
        pkt = Packet(src_ip=ip(src), dst_ip=ip(dst), src_port=sport, dst_port=dport)
        assert hash_packets_batch(MICROSOFT_TEST_KEY, [pkt], IPV4_TCP)[0] == h_tcp
        assert hash_packets_batch(MICROSOFT_TEST_KEY, [pkt], IPV4_ONLY)[0] == h_ip

    @pytest.mark.parametrize("option", [IPV4_TCP, IPV4_UDP, IPV4_ONLY])
    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_thousand_packets_bit_for_bit(self, option, seed):
        rng = np.random.default_rng(1000 + seed)
        key = bytes(rng.integers(0, 256, size=52, dtype=np.uint8))
        packets = random_packets(seed, 1000)
        batch = hash_packets_batch(key, packets, option)
        assert batch.dtype == np.uint32
        scalar = [hash_packet(key, pkt, option) for pkt in packets]
        assert batch.tolist() == scalar

    @given(
        key=st.binary(min_size=40, max_size=52),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_keys_and_inputs(self, key, seed):
        packets = random_packets(seed, 64)
        for option in (IPV4_TCP, IPV4_ONLY):
            batch = hash_packets_batch(key, packets, option)
            assert batch.tolist() == [
                hash_packet(key, pkt, option) for pkt in packets
            ]

    def test_matrix_rows_equal_scalar_inputs(self):
        packets = random_packets(5, 100)
        matrix = hash_input_matrix(packets, IPV4_TCP)
        assert matrix.shape == (100, 12)
        for i, pkt in enumerate(packets):
            assert matrix[i].tobytes() == hash_input(pkt, IPV4_TCP)

    def test_unknown_field_rejected(self):
        class Bogus:
            packet_field = "no_such_field"
            width = 32

        class BogusOption:
            fields = (Bogus(),)

        with pytest.raises(KeyError, match="no_such_field"):
            hash_input_matrix(random_packets(0, 2), BogusOption())
