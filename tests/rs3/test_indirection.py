"""Indirection table: lookup and static RSS++ rebalancing."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.rs3.indirection import IndirectionTable


class TestLookup:
    def test_round_robin_default(self):
        table = IndirectionTable(n_queues=4, size=8)
        assert [table.lookup(i) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_lookup_uses_low_bits(self):
        table = IndirectionTable(n_queues=4, size=8)
        assert table.lookup(0x12345678) == table.lookup(0x12345678 & 7)

    def test_lookup_many_matches_scalar(self):
        table = IndirectionTable(n_queues=5, size=16)
        hashes = np.arange(100, dtype=np.int64) * 7919
        vector = table.lookup_many(hashes)
        assert all(vector[i] == table.lookup(int(h)) for i, h in enumerate(hashes))

    def test_invalid_sizes_rejected(self):
        with pytest.raises(SimulationError):
            IndirectionTable(n_queues=0)
        with pytest.raises(SimulationError):
            IndirectionTable(n_queues=4, size=100)  # not a power of two


class TestBalance:
    def test_balance_flattens_skewed_loads(self):
        rng = np.random.default_rng(2)
        table = IndirectionTable(n_queues=4, size=64)
        # Zipf-ish entry loads: a few heavy entries.
        loads = rng.pareto(1.2, size=64) + 0.01
        before = table.queue_loads(loads)
        imbalance_before = before.max() / before.mean()
        table.balance(loads)
        after = table.queue_loads(loads)
        imbalance_after = after.max() / after.mean()
        assert imbalance_after <= imbalance_before
        assert imbalance_after < 1.5

    def test_balance_preserves_total_load(self):
        rng = np.random.default_rng(3)
        table = IndirectionTable(n_queues=8, size=128)
        loads = rng.random(128)
        table.balance(loads)
        assert abs(table.queue_loads(loads).sum() - loads.sum()) < 1e-9

    def test_balance_keeps_all_queues_used(self):
        table = IndirectionTable(n_queues=4, size=64)
        table.balance(np.ones(64))
        assert set(table.entries.tolist()) == {0, 1, 2, 3}

    def test_shape_validated(self):
        table = IndirectionTable(n_queues=4, size=64)
        with pytest.raises(SimulationError):
            table.balance(np.ones(32))
        with pytest.raises(SimulationError):
            table.queue_loads(np.ones(32))
