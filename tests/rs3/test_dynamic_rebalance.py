"""Dynamic (incremental) RSS++ rebalancing under shifting skew."""

import numpy as np
import pytest

from repro.rs3.indirection import IndirectionTable


def imbalance(table: IndirectionTable, loads: np.ndarray) -> float:
    queue_loads = table.queue_loads(loads)
    return float(queue_loads.max() / max(queue_loads.mean(), 1e-12))


class TestDynamicRebalance:
    def test_bounded_moves(self):
        table = IndirectionTable(n_queues=4, size=64)
        rng = np.random.default_rng(1)
        loads = rng.pareto(1.1, size=64) + 0.01
        moved = table.rebalance(loads, max_moves=3)
        assert moved <= 3

    def test_each_round_improves_or_stops(self):
        table = IndirectionTable(n_queues=4, size=64)
        rng = np.random.default_rng(2)
        loads = rng.pareto(1.1, size=64) + 0.01
        previous = imbalance(table, loads)
        for _ in range(10):
            moved = table.rebalance(loads, max_moves=2)
            current = imbalance(table, loads)
            assert current <= previous + 1e-9
            previous = current
            if moved == 0:
                break

    def test_converges_toward_offline_balance(self):
        rng = np.random.default_rng(3)
        loads = rng.pareto(1.1, size=128) + 0.01
        online = IndirectionTable(n_queues=8, size=128)
        for _ in range(60):
            if online.rebalance(loads, max_moves=4) == 0:
                break
        offline = IndirectionTable(n_queues=8, size=128)
        offline.balance(loads)
        assert imbalance(online, loads) <= 1.35 * imbalance(offline, loads)

    def test_tracks_shifting_skew(self):
        """Online rebalancing keeps up when the elephants move."""
        rng = np.random.default_rng(4)
        table = IndirectionTable(n_queues=4, size=64)
        for epoch in range(5):
            loads = np.full(64, 0.1)
            hot = rng.choice(64, size=4, replace=False)
            loads[hot] = 10.0
            before = imbalance(table, loads)
            for _ in range(20):
                if table.rebalance(loads, max_moves=2) == 0:
                    break
            assert imbalance(table, loads) <= before + 1e-9

    def test_shape_validated(self):
        table = IndirectionTable(n_queues=4, size=64)
        with pytest.raises(Exception):
            table.rebalance(np.ones(16))
