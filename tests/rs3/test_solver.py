"""RS3 key solver: cancellation, mapping, symmetry, quality, verification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RssUnsatisfiableError
from repro.rs3.fields import E810, IPV4_TCP, RssField
from repro.rs3.solver import CancelField, KeySearchStats, MapFields, RssKeySolver
from repro.rs3.toeplitz import toeplitz_hash


@pytest.fixture()
def rng():
    return np.random.default_rng(77)


def two_port_solver(**kwargs) -> RssKeySolver:
    return RssKeySolver(E810, {0: IPV4_TCP, 1: IPV4_TCP}, **kwargs)


def set_field(data: bytearray, field: RssField, value: int) -> None:
    offset = IPV4_TCP.offsets()[field] // 8
    width = field.width // 8
    data[offset : offset + width] = value.to_bytes(width, "big")


class TestCancellation:
    def test_cancelled_field_has_no_influence(self, rng):
        solver = two_port_solver()
        reqs = [CancelField(0, RssField.SRC_PORT)]
        keys = solver.solve(reqs, rng=rng)
        base = bytearray(rng.bytes(12))
        flipped = bytearray(base)
        set_field(flipped, RssField.SRC_PORT, 0x1234)
        # Cancellation is scoped to the indirection-index bits (see
        # RssKeySolver.build_system): the queue must not change.
        mask = E810.reta_size - 1
        assert toeplitz_hash(keys[0], bytes(base)) & mask == (
            toeplitz_hash(keys[0], bytes(flipped)) & mask
        )

    def test_non_cancelled_field_still_matters(self, rng):
        solver = two_port_solver()
        keys = solver.solve([CancelField(0, RssField.SRC_PORT)], rng=rng)
        collisions = 0
        for _ in range(64):
            base = bytearray(rng.bytes(12))
            flipped = bytearray(base)
            set_field(flipped, RssField.DST_IP, int(rng.integers(0, 2**32)))
            if toeplitz_hash(keys[0], bytes(base)) == toeplitz_hash(
                keys[0], bytes(flipped)
            ):
                collisions += 1
        assert collisions < 8

    def test_cancelling_everything_unsatisfiable(self, rng):
        solver = two_port_solver()
        reqs = [
            CancelField(port, field)
            for port in (0, 1)
            for field in RssField
        ]
        with pytest.raises(RssUnsatisfiableError):
            solver.solve(reqs, rng=rng)


class TestMapping:
    def test_cross_port_symmetry(self, rng):
        solver = two_port_solver()
        reqs = [
            MapFields(0, RssField.SRC_IP, 1, RssField.DST_IP),
            MapFields(0, RssField.DST_IP, 1, RssField.SRC_IP),
            MapFields(0, RssField.SRC_PORT, 1, RssField.DST_PORT),
            MapFields(0, RssField.DST_PORT, 1, RssField.SRC_PORT),
        ]
        keys = solver.solve(reqs, rng=rng)
        solver.verify(reqs, keys, rng=rng, samples=128)

    def test_same_port_woo_park_symmetry(self, rng):
        solver = RssKeySolver(E810, {0: IPV4_TCP})
        reqs = [
            MapFields(0, RssField.SRC_IP, 0, RssField.DST_IP),
            MapFields(0, RssField.DST_IP, 0, RssField.SRC_IP),
            MapFields(0, RssField.SRC_PORT, 0, RssField.DST_PORT),
            MapFields(0, RssField.DST_PORT, 0, RssField.SRC_PORT),
        ]
        keys = solver.solve(reqs, rng=rng)
        solver.verify(reqs, keys, rng=rng, samples=128)
        # The structure the constraints force (cf. Woo & Park [74]): the
        # IP region of the key is 32-bit periodic and the port region is
        # 16-bit periodic.
        from repro.rs3.toeplitz import key_bit

        key = keys[0]
        for i in range(63):
            assert key_bit(key, i) == key_bit(key, i + 32)
        for i in range(64, 111):
            assert key_bit(key, i) == key_bit(key, i + 16)

    def test_width_mismatch_rejected(self):
        with pytest.raises(RssUnsatisfiableError):
            MapFields(0, RssField.SRC_IP, 1, RssField.SRC_PORT)

    def test_verify_catches_bad_keys(self, rng):
        solver = two_port_solver()
        reqs = [MapFields(0, RssField.SRC_IP, 1, RssField.DST_IP),
                MapFields(0, RssField.DST_IP, 1, RssField.SRC_IP),
                MapFields(0, RssField.SRC_PORT, 1, RssField.DST_PORT),
                MapFields(0, RssField.DST_PORT, 1, RssField.SRC_PORT)]
        bad_keys = {0: rng.bytes(52), 1: rng.bytes(52)}
        with pytest.raises(RssUnsatisfiableError):
            solver.verify(reqs, bad_keys, rng=rng, samples=64)


class TestQualityLoop:
    def test_stats_recorded(self, rng):
        solver = two_port_solver()
        stats = KeySearchStats()
        solver.solve([CancelField(0, RssField.SRC_PORT)], rng=rng, stats=stats)
        assert stats.attempts >= 1
        # 16 cancelled input positions x 9 table-index window offsets.
        assert stats.constraint_rows == 16 * 9
        assert stats.free_bits > 0

    def test_keys_distribute_traffic(self, rng):
        """The §4 acceptance criterion: no degenerate keys escape."""
        from repro.rs3.indirection import IndirectionTable

        solver = two_port_solver(n_queues=16)
        keys = solver.solve([], rng=rng)
        table = IndirectionTable(16)
        counts = np.zeros(16)
        for _ in range(2000):
            counts[table.lookup(toeplitz_hash(keys[0], rng.bytes(12)))] += 1
        assert counts.max() / counts.sum() < 2.0 / 16

    def test_unconstrained_keys_differ_per_port(self, rng):
        keys = two_port_solver().solve([], rng=rng)
        assert keys[0] != keys[1]


_NAT_KEYS: dict[int, bytes] = {}


def _nat_style_keys() -> dict[int, bytes]:
    if not _NAT_KEYS:
        reqs = [
            CancelField(0, RssField.SRC_IP),
            CancelField(0, RssField.SRC_PORT),
            CancelField(1, RssField.DST_IP),
            CancelField(1, RssField.DST_PORT),
            MapFields(0, RssField.DST_IP, 1, RssField.SRC_IP),
            MapFields(0, RssField.DST_PORT, 1, RssField.SRC_PORT),
        ]
        _NAT_KEYS.update(
            two_port_solver().solve(reqs, rng=np.random.default_rng(5))
        )
    return _NAT_KEYS


class TestHypothesisMapping:
    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**16 - 1))
    @settings(max_examples=50, deadline=None)
    def test_nat_style_requirements_hold(self, ip_value, port_value):
        rng = np.random.default_rng(5)
        keys = _nat_style_keys()
        lan = bytearray(rng.bytes(12))
        set_field(lan, RssField.DST_IP, ip_value)
        set_field(lan, RssField.DST_PORT, port_value)
        wan = bytearray(rng.bytes(12))
        set_field(wan, RssField.SRC_IP, ip_value)
        set_field(wan, RssField.SRC_PORT, port_value)
        mask = E810.reta_size - 1
        assert toeplitz_hash(keys[0], bytes(lan)) & mask == (
            toeplitz_hash(keys[1], bytes(wan)) & mask
        )
