"""Pipeline integration: every analysis carries a full trace, and the
``repro.obs`` package honors its zero-dependency contract."""

from __future__ import annotations

import ast
import sys
from pathlib import Path

import pytest

import repro.obs
from repro import Maestro, obs
from repro.core.pipeline import PIPELINE_STAGES
from repro.eval.__main__ import main as eval_main
from repro.nf.nfs import ALL_NFS, Firewall


class TestAnalyzeTrace:
    def test_four_stage_spans_with_sane_values(self):
        maestro = Maestro(seed=0)
        nf = Firewall()
        result = maestro.analyze(nf)
        maestro.parallelize(nf, n_cores=8, result=result)
        names = [s.name for s in result.trace.spans]
        for stage in PIPELINE_STAGES:
            assert names.count(stage) == 1, f"missing stage span {stage}"
        by_name = {s.name: s for s in result.trace.spans}
        root = by_name["maestro.analyze"]
        for stage in ("symbolic_execution", "constraints_generator", "rs3"):
            record = by_name[stage]
            assert record.parent_id == root.span_id
            assert record.attrs["nf"] == "fw"
            assert 0.0 < record.duration_s <= root.duration_s
        assert root.attrs["verdict"] == result.solution.verdict.value

    def test_timings_view_matches_spans(self, analyses):
        result = analyses["fw"]
        timings = result.timings
        assert set(timings) >= {
            "symbolic_execution",
            "constraints_generator",
            "rs3",
        }
        assert result.total_time == pytest.approx(sum(timings.values()))
        for stage, seconds in timings.items():
            span_total = sum(
                s.duration_s for s in result.trace.spans_named(stage)
            )
            assert seconds == pytest.approx(span_total)

    @pytest.mark.parametrize("name", sorted(ALL_NFS))
    def test_every_nf_trace_has_spans_and_counters(self, analyses, name):
        """The ISSUE acceptance criterion, per corpus NF."""
        result = analyses[name]
        trace = result.trace
        span_names = {s.name for s in trace.spans}
        assert {"symbolic_execution", "constraints_generator", "rs3"} <= span_names
        # Symbex path counters (one stream per ingress port).
        assert trace.counter_total("symbex.paths") == len(result.tree.paths())
        # RS3 key-search counters mirror the KeySearchStats object.
        assert trace.counter_total("rs3.attempts") == result.key_stats.attempts
        assert (
            trace.counter_total("rs3.constraint_rows")
            == result.key_stats.constraint_rows
        )
        assert trace.counter_total("rs3.free_bits") == result.key_stats.free_bits
        assert result.key_stats.elapsed_s > 0.0

    def test_describe_surfaces_key_search_stats(self, analyses):
        text = analyses["fw"].describe()
        assert "rs3: attempts=" in text
        assert "elapsed=" in text
        assert "timings:" in text

    def test_global_collector_sees_pipeline_events(self):
        mem = obs.MemoryCollector()
        with obs.attached(mem):
            Maestro(seed=0).analyze(Firewall())
        assert mem.spans_named("maestro.analyze")
        assert mem.counter_total("symbex.paths") > 0
        assert mem.counter_total("rs3.attempts") >= 1


class TestRuntimeCounters:
    def test_sequential_runner_op_totals(self, generator):
        from repro.nf.runtime import SequentialRunner

        runner = SequentialRunner(Firewall())
        trace, _flows = generator.uniform_trace(n_packets=64, n_flows=8)
        mem = obs.MemoryCollector()
        with obs.attached(mem):
            runner.process_trace(trace)
        totals = runner.op_totals
        assert sum(totals.values()) > 0
        assert any(kind == "read" for _, kind in totals)
        # The obs counters agree with the runner's own accounting.
        for (obj, kind), count in totals.items():
            assert mem.counter_total("nf.state_op", obj=obj, kind=kind) == count


class TestEvalTraceFlag:
    def test_eval_main_writes_trace(self, tmp_path, capsys):
        path = str(tmp_path / "verdicts.jsonl")
        assert eval_main(["verdicts", "--fast", "--trace", path]) == 0
        capsys.readouterr()
        loaded = obs.load_trace(path)
        assert loaded.spans_named("eval.experiment")
        assert loaded.spans_named("maestro.analyze")
        assert loaded.counter_total("symbex.paths") > 0
        text = obs.render_trace(path)
        assert "eval.experiment" in text


class TestStdlibOnlyGuard:
    def test_obs_imports_nothing_outside_stdlib(self):
        """`repro.obs` must stay zero-dependency (usable from any layer)."""
        obs_dir = Path(repro.obs.__file__).parent
        offenders: list[str] = []
        for path in sorted(obs_dir.glob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    modules = [alias.name for alias in node.names]
                elif isinstance(node, ast.ImportFrom):
                    if node.level > 0:  # relative: stays inside the package
                        continue
                    modules = [node.module] if node.module else []
                else:
                    continue
                for module in modules:
                    top = module.split(".")[0]
                    in_package = module == "repro.obs" or module.startswith(
                        "repro.obs."
                    )
                    if top not in sys.stdlib_module_names and not in_package:
                        offenders.append(f"{path.name}: {module}")
        assert not offenders, f"non-stdlib imports in repro.obs: {offenders}"
