"""JSONL export: round-trip fidelity, schema, and the report CLI."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.__main__ import main as obs_main
from repro.obs.export import SCHEMA_VERSION, read_events


def _emit_sample_trace() -> tuple[obs.MemoryCollector, list]:
    """Emit a representative event mix; return the live collector."""
    mem = obs.MemoryCollector()
    with obs.attached(mem):
        with obs.span("maestro.analyze", nf="fw"):
            with obs.span("symbolic_execution", nf="fw"):
                obs.counter("symbex.paths", 12, nf="fw", port=0)
                obs.counter("symbex.paths", 9, nf="fw", port=1)
            obs.histogram("symbex.max_depth", 6.0, nf="fw", port=0)
        obs.counter("rs3.attempts", 3)
    return mem, mem.spans


class TestJsonlRoundTrip:
    def test_summary_survives_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with obs.JsonlCollector(path) as jsonl:
            with obs.attached(jsonl):
                mem, _ = _emit_sample_trace()
        loaded = obs.load_trace(path)
        # json round-trips Python floats exactly, so deep equality holds.
        assert loaded.summary() == mem.summary()

    def test_span_identity_preserved(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with obs.JsonlCollector(path) as jsonl:
            with obs.attached(jsonl):
                _emit_sample_trace()
        loaded = obs.load_trace(path)
        by_name = {s.name: s for s in loaded.spans}
        child = by_name["symbolic_execution"]
        parent = by_name["maestro.analyze"]
        assert child.parent_id == parent.span_id
        assert child.attrs == {"nf": "fw"}
        assert child.duration_s <= parent.duration_s

    def test_counters_aggregate_per_stream(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with obs.JsonlCollector(path) as jsonl:
            with obs.attached(jsonl):
                obs.counter("ops", 1, obj="a")
                obs.counter("ops", 1, obj="a")
                obs.counter("ops", 1, obj="b")
        counter_lines = [
            e for e in read_events(path) if e["kind"] == "counter"
        ]
        # Two streams, not three raw events: counters aggregate on flush.
        assert len(counter_lines) == 2
        loaded = obs.load_trace(path)
        assert loaded.counter_total("ops", obj="a") == 2
        assert loaded.counter_total("ops") == 3

    def test_meta_line_first_with_schema(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with obs.JsonlCollector(path):
            pass
        first = next(read_events(path))
        assert first["kind"] == "meta"
        assert first["schema"] == SCHEMA_VERSION

    def test_every_line_is_valid_json(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with obs.JsonlCollector(path) as jsonl:
            with obs.attached(jsonl):
                _emit_sample_trace()
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                event = json.loads(line)
                assert "kind" in event

    def test_non_scalar_attrs_coerced_to_str(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with obs.JsonlCollector(path) as jsonl:
            with obs.attached(jsonl):
                with obs.span("stage", payload=(1, 2)):
                    pass
        record = obs.load_trace(path).spans[0]
        assert record.attrs["payload"] == "(1, 2)"

    def test_corrupt_line_raises_value_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"meta","schema":1}\nnot json\n')
        with pytest.raises(ValueError, match="not valid JSONL"):
            obs.load_trace(str(path))


class TestReport:
    def test_render_trace_tables(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with obs.JsonlCollector(path) as jsonl:
            with obs.attached(jsonl):
                _emit_sample_trace()
        text = obs.render_trace(path)
        assert "spans ==" in text
        assert "symbolic_execution" in text
        assert "fw" in text
        assert "symbex.paths" in text
        assert "symbex.max_depth" in text

    def test_render_empty_trace(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        with obs.JsonlCollector(path):
            pass
        text = obs.render_trace(path)
        assert "(no spans)" in text
        assert "(no counters)" in text

    def test_cli_report(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        with obs.JsonlCollector(path) as jsonl:
            with obs.attached(jsonl):
                _emit_sample_trace()
        assert obs_main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "maestro.analyze" in out
        assert "rs3.attempts" in out

    def test_cli_report_missing_file(self, tmp_path, capsys):
        assert obs_main(["report", str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err
