"""Telemetry plane: windowed sinks, flight recorder, detectors, CLIs."""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass

import pytest

from repro import obs
from repro.obs.__main__ import main as obs_main
from repro.obs.collect import percentile
from repro.obs.detect import detect_skew, model_drift
from repro.obs.flight import FlightRecorder, flow_fingerprint
from repro.obs.telemetry import METRICS, TelemetrySink, Window


def _row(packets: int, **metrics: int) -> list[int]:
    """One per-core window row with named metric overrides."""
    values = {name: 0 for name in METRICS}
    values["packets"] = packets
    values.update(metrics)
    return [values[name] for name in METRICS]


# ------------------------------------------------------------------ #
# Windows and the sink
# ------------------------------------------------------------------ #
class TestWindow:
    def test_metric_and_extent(self):
        sink = TelemetrySink(window_packets=4)
        window = sink.record_window([_row(3, reads=7), _row(1, reads=2)])
        assert window.n_packets == 4
        assert window.metric("packets") == (3, 1)
        assert window.metric("reads") == (7, 2)
        assert window.metric("lock_waits") == (0, 0)

    def test_dict_round_trip(self):
        sink = TelemetrySink(window_packets=4)
        window = sink.record_window([_row(2, writes=5), _row(2)])
        assert Window.from_dict(window.to_dict()) == window


class TestTelemetrySink:
    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            TelemetrySink(window_packets=0)
        with pytest.raises(ValueError):
            TelemetrySink(max_windows=0)

    def test_short_rows_zero_padded_long_rows_rejected(self):
        sink = TelemetrySink(window_packets=8)
        window = sink.record_window([[5, 1]])  # packets, reads only
        assert window.cores[0] == (5, 1) + (0,) * (len(METRICS) - 2)
        with pytest.raises(ValueError, match="window row"):
            sink.record_window([[0] * (len(METRICS) + 1)])

    def test_virtual_time_cursor_advances_by_recorded_packets(self):
        sink = TelemetrySink(window_packets=4)
        first = sink.record_window([_row(3), _row(1)])
        second = sink.record_window([_row(2), _row(2)])
        assert (first.start_packet, first.end_packet) == (0, 4)
        assert (second.start_packet, second.end_packet) == (4, 8)
        assert sink.total_packets == 8

    def test_ring_evicts_but_lifetime_totals_survive(self):
        sink = TelemetrySink(window_packets=1, max_windows=2)
        for i in range(5):
            sink.record_window([_row(1, reads=i)])
        assert len(sink) == 2  # ring holds only the newest windows
        assert sink.windows_recorded == 5
        assert [w.index for w in sink.windows] == [3, 4]
        # Conservation is eviction-proof: totals cover all 5 windows.
        assert sink.total("packets") == 5
        assert sink.total("reads") == 0 + 1 + 2 + 3 + 4
        # but the in-ring series only the surviving two
        assert sink.series("reads") == [[3], [4]]

    def test_series_pads_when_core_count_grows(self):
        sink = TelemetrySink(window_packets=4)
        sink.record_window([_row(4)])
        sink.record_window([_row(2), _row(2)])
        assert sink.n_cores == 2
        assert sink.series("packets") == [[4, 0], [2, 2]]

    def test_core_shares(self):
        sink = TelemetrySink(window_packets=4)
        assert sink.core_shares() == []
        sink.record_window([_row(3), _row(1)])
        assert sink.core_shares() == [0.75, 0.25]

    def test_summary_shape_and_percentiles(self):
        sink = TelemetrySink(window_packets=4, label="t")
        sink.record_window([_row(1), _row(3)])
        sink.record_window([_row(4), _row(0)])
        summary = sink.summary()
        assert summary["label"] == "t"
        assert summary["n_windows"] == 2
        assert summary["total_packets"] == 8
        packets = summary["metrics"]["packets"]
        assert packets["total"] == 8
        assert packets["per_core_total"] == [5, 3]
        assert packets["p50"] == [1.0, 0.0]
        assert packets["max"] == [4.0, 3.0]
        json.dumps(summary)  # report-ready

    def test_sink_dict_round_trip(self):
        sink = TelemetrySink(window_packets=4, max_windows=2, label="rt")
        for i in range(4):
            sink.record_window([_row(4, writes=i), _row(0, reads=i)])
        clone = TelemetrySink.from_dict(sink.to_dict())
        assert clone.to_dict() == sink.to_dict()
        assert clone.summary() == sink.summary()


class TestPercentileBoundaries:
    """Nearest-rank boundary behaviour the summary percentiles rely on."""

    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    @pytest.mark.parametrize("q", [0, 50, 100])
    def test_single_element_is_itself_at_every_q(self, q):
        assert percentile([7.0], q) == 7.0

    def test_two_elements(self):
        assert percentile([10.0, 2.0], 0) == 2.0
        assert percentile([10.0, 2.0], 50) == 2.0  # nearest-rank: lower
        assert percentile([10.0, 2.0], 100) == 10.0


class TestAttachment:
    def test_noop_without_sink(self):
        assert obs.active_telemetry() is None
        assert not obs.telemetry_enabled()

    def test_context_manager_scopes_and_nests(self):
        outer = TelemetrySink()
        inner = TelemetrySink()
        with obs.telemetry(outer):
            assert obs.active_telemetry() is outer
            with obs.telemetry(inner):
                # innermost shadows
                assert obs.active_telemetry() is inner
            assert obs.active_telemetry() is outer
            assert obs.telemetry_enabled()
        assert obs.active_telemetry() is None

    def test_detach_requires_attached_sink(self):
        with pytest.raises(ValueError):
            obs.detach_telemetry(TelemetrySink())


# ------------------------------------------------------------------ #
# Flight recorder
# ------------------------------------------------------------------ #
@dataclass(frozen=True)
class _Op:
    obj: str
    op: str
    write: bool


class TestFlightRecorder:
    def test_fingerprint_is_process_stable(self):
        fields = ("10.0.0.1", "10.0.0.2", 1234, 80, 6)
        material = "|".join(repr(f) for f in fields).encode()
        assert flow_fingerprint(fields) == zlib.crc32(material)
        assert flow_fingerprint(fields) == flow_fingerprint(list(fields))

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_ring_keeps_last_n(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(10):
            recorder.record(i, 0, i % 2, "forward", 1, (i,), [])
        assert len(recorder) == 3
        assert recorder.total_recorded == 10
        assert [e["index"] for e in recorder.snapshot()] == [7, 8, 9]

    def test_path_interning_and_event_shape(self):
        recorder = FlightRecorder()
        read_path = [_Op("fw_state", "get", False)]
        write_path = [_Op("fw_state", "get", False), _Op("fw_state", "put", True)]
        recorder.record(0, 0, 2, "forward", 1, ("a",), read_path)
        recorder.record(1, 0, 2, "drop", None, ("b",), write_path)
        recorder.record(2, 1, 0, "forward", 0, ("c",), read_path)
        a, b, c = recorder.snapshot()
        assert a["path_id"] == c["path_id"] == 0  # same path interned once
        assert b["path_id"] == 1
        assert b["state_ops"] == ["fw_state.get", "fw_state.put!"]
        assert b["out_port"] is None
        assert recorder.paths()[1] == (
            ("fw_state", "get", False),
            ("fw_state", "put", True),
        )
        # events serialize straight into reproducer JSON
        json.dumps(recorder.snapshot())

    def test_snapshot_copies_and_clear(self):
        recorder = FlightRecorder()
        recorder.record(0, 0, 0, "forward", 1, ("x",), [])
        snap = recorder.snapshot()
        snap[0]["core"] = 99
        assert recorder.snapshot()[0]["core"] == 0
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.total_recorded == 1  # lifetime count survives


# ------------------------------------------------------------------ #
# Detectors
# ------------------------------------------------------------------ #
class TestDetectSkew:
    def test_empty_sink_is_quiet(self):
        finding = detect_skew(TelemetrySink())
        assert not finding.detected
        assert finding.hot_core == -1

    def test_uniform_load_stays_below_threshold(self):
        sink = TelemetrySink(window_packets=8)
        for _ in range(4):
            sink.record_window([_row(2), _row(2), _row(2), _row(2)])
        finding = detect_skew(sink)
        assert not finding.detected
        assert finding.imbalance == pytest.approx(1.0)
        assert finding.trend == pytest.approx(0.0)

    def test_hot_core_detected_with_growing_trend(self):
        sink = TelemetrySink(window_packets=8)
        # core 1 takes 4/8 then 6/8 then 8/8 of each window
        for hot in (4, 6, 8):
            rest = (8 - hot) // 2
            sink.record_window([_row(rest), _row(hot), _row(8 - hot - rest)])
        finding = detect_skew(sink)
        assert finding.detected
        assert finding.hot_core == 1
        assert finding.imbalance == pytest.approx((18 / 24) / (1 / 3))
        assert finding.trend > 0  # hotspot still growing
        assert len(finding.per_window_imbalance) == 3
        json.dumps(finding.to_dict())

    def test_threshold_is_respected(self):
        sink = TelemetrySink(window_packets=4)
        sink.record_window([_row(3), _row(1)])  # imbalance exactly 1.5
        assert detect_skew(sink, threshold=1.4).detected
        assert not detect_skew(sink, threshold=1.5).detected  # strict >


class TestModelDrift:
    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            model_drift([], [])

    def test_perfect_prediction_scores_zero(self):
        report = model_drift([0.5, 0.5], [0.5, 0.5])
        assert report.score == 0.0
        assert not report.drifted

    def test_maximal_share_drift_scores_one(self):
        report = model_drift([1.0, 0.0], [0.0, 1.0])
        assert report.score == 1.0
        assert report.drifted
        assert report.share_distance == 1.0

    def test_write_fraction_blended_half_half(self):
        report = model_drift(
            [0.5, 0.5],
            [0.5, 0.5],
            predicted_write_fraction=0.2,
            observed_write_fraction=0.6,
        )
        assert report.score == pytest.approx(0.5 * 0.0 + 0.5 * 0.4)
        assert report.write_fraction_gap == pytest.approx(0.4)
        assert report.components == {
            "share_distance": 0.0,
            "write_fraction_gap": pytest.approx(0.4),
        }

    def test_shorter_side_zero_padded(self):
        report = model_drift([1.0], [0.5, 0.5])
        assert report.predicted_shares == (1.0, 0.0)
        assert report.share_distance == pytest.approx(0.5)
        json.dumps(report.to_dict())


# ------------------------------------------------------------------ #
# Exposition: series files, Prometheus, and the CLI
# ------------------------------------------------------------------ #
def _sample_sink() -> TelemetrySink:
    sink = TelemetrySink(window_packets=4, label="cli")
    sink.record_window([_row(3, reads=6, steer_misses=3), _row(1, reads=1, steer_hits=1)])
    sink.record_window([_row(2, writes=2, steer_hits=2), _row(2, steer_hits=2)])
    return sink


class TestTelemetryFiles:
    def test_round_trip_with_flight(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        sink = _sample_sink()
        events = [{"index": 7, "core": 1, "action": "drop"}]
        obs.write_telemetry(path, sink, flight=events)
        loaded, flight = obs.load_telemetry(path)
        assert loaded.to_dict() == sink.to_dict()
        assert flight == events

    def test_missing_meta_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "window", "index": 0}\n')
        with pytest.raises(ValueError, match="missing telemetry-meta"):
            obs.load_telemetry(str(path))

    def test_prometheus_exposition(self):
        sink = _sample_sink()
        text = obs.render_prometheus(sink)
        assert text.endswith("\n")
        assert '# TYPE repro_core_packets_total counter' in text
        assert 'repro_core_packets_total{core="0"} 5' in text
        assert 'repro_core_packets_total{core="1"} 3' in text
        assert 'repro_core_steer_hits_total{core="1"} 3' in text
        assert "repro_telemetry_total_packets 8" in text


class TestTelemetryCli:
    @pytest.fixture()
    def series_file(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        obs.write_telemetry(path, _sample_sink())
        return path

    def test_top_renders_per_core_table(self, series_file, capsys):
        assert obs_main(["top", series_file]) == 0
        out = capsys.readouterr().out
        assert "== telemetry [cli]: 2 window(s)" in out
        assert "core0" in out and "core1" in out
        assert "62.5%" in out  # core0's packet share 5/8
        # steering hit rate: core0 2 hits / 5 steered packets
        assert "40.0%" in out

    def test_timeline_renders_windows(self, series_file, capsys):
        assert obs_main(["timeline", series_file, "--metric", "reads"]) == 0
        out = capsys.readouterr().out
        assert "== timeline: reads per window per core ==" in out
        assert "w0" in out and "0..4" in out

    def test_timeline_rejects_unknown_metric(self, series_file, capsys):
        with pytest.raises(SystemExit):  # argparse choices
            obs_main(["timeline", series_file, "--metric", "nope"])

    def test_prom_matches_renderer(self, series_file, capsys):
        assert obs_main(["prom", series_file]) == 0
        assert capsys.readouterr().out == obs.render_prometheus(_sample_sink())

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        assert obs_main(["top", str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err


class TestReportCli:
    """The trace report satellites: --json and the fast-path section."""

    def _trace_with_fastpath(self, tmp_path) -> tuple[str, obs.MemoryCollector]:
        path = str(tmp_path / "trace.jsonl")
        mem = obs.MemoryCollector()
        with obs.JsonlCollector(path) as jsonl:
            with obs.attached(jsonl), obs.attached(mem):
                obs.counter("fastpath.hits", 75, port=0)
                obs.counter("fastpath.misses", 25, port=0)
        return path, mem

    def test_report_json_is_collector_summary(self, tmp_path, capsys):
        path, mem = self._trace_with_fastpath(tmp_path)
        assert obs_main(["report", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == mem.summary()

    def test_report_shows_fastpath_hit_rate(self, tmp_path, capsys):
        path, _ = self._trace_with_fastpath(tmp_path)
        assert obs_main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "fast path" in out
        assert "75.0%" in out

    def test_report_omits_fastpath_section_without_counters(
        self, tmp_path, capsys
    ):
        path = str(tmp_path / "trace.jsonl")
        with obs.JsonlCollector(path) as jsonl:
            with obs.attached(jsonl):
                obs.counter("symbex.paths", 3, nf="fw")
        assert obs_main(["report", path]) == 0
        assert "fast path" not in capsys.readouterr().out
