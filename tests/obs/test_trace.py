"""Tracer semantics: span nesting, counters/histograms, the no-op path."""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs.trace import _NOOP_SPAN


@pytest.fixture()
def collector():
    mem = obs.MemoryCollector()
    with obs.attached(mem):
        yield mem


class TestSpans:
    def test_nesting_parent_child_links(self, collector):
        with obs.span("outer") as outer:
            with obs.span("inner"):
                pass
        inner_rec, outer_rec = collector.spans
        assert inner_rec.name == "inner" and outer_rec.name == "outer"
        assert inner_rec.parent_id == outer_rec.span_id
        assert outer_rec.parent_id is None
        assert inner_rec.depth == outer_rec.depth + 1 == 1

    def test_completion_ordering_children_first(self, collector):
        with obs.span("a"):
            with obs.span("b"):
                with obs.span("c"):
                    pass
            with obs.span("d"):
                pass
        assert [s.name for s in collector.spans] == ["c", "b", "d", "a"]

    def test_sibling_spans_share_parent(self, collector):
        with obs.span("root") as root:
            with obs.span("first"):
                pass
            with obs.span("second"):
                pass
        by_name = {s.name: s for s in collector.spans}
        assert by_name["first"].parent_id == root.span_id
        assert by_name["second"].parent_id == root.span_id

    def test_duration_and_wall_time_recorded(self, collector):
        with obs.span("timed"):
            pass
        record = collector.spans[0]
        assert record.duration_s >= 0.0
        assert record.start_unix > 0.0

    def test_attrs_at_open_and_via_set(self, collector):
        with obs.span("stage", nf="fw") as sp:
            sp.set("paths", 7)
        record = collector.spans[0]
        assert record.attrs == {"nf": "fw", "paths": 7}

    def test_exception_still_records_span(self, collector):
        with pytest.raises(ValueError):
            with obs.span("doomed"):
                raise ValueError("boom")
        assert [s.name for s in collector.spans] == ["doomed"]

    def test_nesting_is_per_thread(self, collector):
        records = {}

        def worker():
            with obs.span("thread-root"):
                pass
            records["done"] = True

        with obs.span("main-root"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        by_name = {s.name: s for s in collector.spans}
        # The other thread's root must not become a child of main's span.
        assert by_name["thread-root"].parent_id is None
        assert records["done"]


class TestCountersAndHistograms:
    def test_counter_aggregates_by_name_and_attrs(self, collector):
        obs.counter("hits", 2, obj="a")
        obs.counter("hits", 3, obj="a")
        obs.counter("hits", 5, obj="b")
        assert collector.counter_total("hits", obj="a") == 5
        assert collector.counter_total("hits", obj="b") == 5
        assert collector.counter_total("hits") == 10
        assert collector.counter_total("misses") == 0

    def test_histogram_summary_percentiles(self, collector):
        for value in range(1, 101):
            obs.histogram("latency", float(value))
        stats = collector.summary()["histograms"]["latency"]
        assert stats["count"] == 100
        assert stats["p50"] == 50.0
        assert stats["p95"] == 95.0
        assert stats["max"] == 100.0

    def test_span_summary_percentiles(self, collector):
        for _ in range(10):
            with obs.span("stage"):
                pass
        stats = collector.summary()["spans"]["stage"]
        assert stats["count"] == 10
        assert 0.0 <= stats["p50_s"] <= stats["p95_s"] <= stats["max_s"]
        assert stats["total_s"] >= stats["max_s"]

    def test_percentile_nearest_rank(self):
        assert obs.percentile([], 50) == 0.0
        assert obs.percentile([3.0, 1.0, 2.0], 50) == 2.0
        assert obs.percentile([3.0, 1.0, 2.0], 100) == 3.0
        assert obs.percentile([5.0], 95) == 5.0


class TestNoOpPath:
    def test_span_without_collector_is_shared_noop(self):
        assert obs.span("anything") is _NOOP_SPAN
        assert obs.span("other", nf="fw") is _NOOP_SPAN

    def test_noop_span_supports_protocol(self):
        with obs.span("anything") as sp:
            sp.set("key", "value")  # silently dropped

    def test_counter_histogram_without_collector(self):
        obs.counter("free", 1)
        obs.histogram("free", 1.0)  # must not raise

    def test_events_inside_noop_window_are_dropped(self):
        obs.counter("dropped", 1)
        mem = obs.MemoryCollector()
        with obs.attached(mem):
            obs.counter("kept", 1)
        obs.counter("dropped", 1)
        assert mem.counter_total("kept") == 1
        assert mem.counter_total("dropped") == 0


class TestFanOut:
    def test_events_reach_all_attached_collectors(self):
        first, second = obs.MemoryCollector(), obs.MemoryCollector()
        with obs.attached(first):
            with obs.attached(second):
                with obs.span("both"):
                    obs.counter("n", 1)
        assert [s.name for s in first.spans] == ["both"]
        assert [s.name for s in second.spans] == ["both"]
        assert first.counter_total("n") == second.counter_total("n") == 1


class TestDecorator:
    def test_traced_records_span(self):
        mem = obs.MemoryCollector()

        @obs.traced("my.op", layer="test")
        def add(a, b):
            return a + b

        with obs.attached(mem):
            assert add(2, 3) == 5
        record = mem.spans[0]
        assert record.name == "my.op"
        assert record.attrs["layer"] == "test"

    def test_traced_defaults_to_qualname(self):
        mem = obs.MemoryCollector()

        @obs.traced()
        def helper():
            return 1

        with obs.attached(mem):
            helper()
        assert "helper" in mem.spans[0].name
