"""Shared fixtures: cached Maestro analyses and traffic helpers.

Analyzing an NF (ESE + constraints + RS3 key search) costs a few hundred
milliseconds; the session-scoped cache below keeps the suite fast without
hiding cross-test state (analyses are immutable results).
"""

from __future__ import annotations

import pytest

from repro.core import Maestro, MaestroResult
from repro.nf.nfs import ALL_NFS
from repro.traffic import TrafficGenerator


class AnalysisCache:
    """Lazily analyze each corpus NF once per test session."""

    def __init__(self) -> None:
        self._maestro = Maestro(seed=1234)
        self._cache: dict[str, MaestroResult] = {}

    def __getitem__(self, name: str) -> MaestroResult:
        if name not in self._cache:
            self._cache[name] = self._maestro.analyze(ALL_NFS[name]())
        return self._cache[name]

    @property
    def maestro(self) -> Maestro:
        return self._maestro


@pytest.fixture(scope="session")
def analyses() -> AnalysisCache:
    return AnalysisCache()


@pytest.fixture()
def generator() -> TrafficGenerator:
    return TrafficGenerator(seed=99)
