"""Experiment harness: every figure runs and shows the paper's shape.

These are integration tests over the full stack: pipeline + simulators +
traffic.  Each asserts the *qualitative* claims the corresponding paper
figure makes (who wins, where the knees are), which is the reproduction
contract (absolute numbers belong to the authors' testbed).
"""

import pytest

from repro.eval import EXPERIMENTS
from repro.eval import fig05, fig06, fig08, fig09, fig10, fig11, fig14
from repro.eval import latency as latency_exp
from repro.eval import verdicts as verdicts_exp


def series_by_label(experiment, needle: str):
    matches = [s for s in experiment.series if needle in s.label]
    assert matches, f"no series matching {needle!r}"
    return matches


class TestFig5:
    @pytest.fixture(scope="class")
    def experiment(self):
        return fig05.run(fast=True)

    def test_zipf_unbalanced_slowest_at_scale(self, experiment):
        uniform = series_by_label(experiment, "uniform")[0]
        unbalanced = series_by_label(experiment, "zipf unbalanced")[0]
        assert unbalanced.values[-1] <= uniform.values[-1]

    def test_balancing_recovers_throughput(self, experiment):
        unbalanced = series_by_label(experiment, "zipf unbalanced")[0]
        balanced = series_by_label(experiment, "zipf balanced")[0]
        assert balanced.values[-1] >= unbalanced.values[-1]

    def test_single_core_zipf_faster(self, experiment):
        uniform = series_by_label(experiment, "uniform")[0]
        zipf = series_by_label(experiment, "zipf balanced")[0]
        assert zipf.values[0] >= uniform.values[0]

    def test_error_bars_present(self, experiment):
        for series in experiment.series:
            assert series.low is not None and series.high is not None
            assert all(
                lo <= v <= hi
                for lo, v, hi in zip(series.low, series.values, series.high)
            )


class TestFig6:
    def test_all_nfs_timed(self):
        experiment = fig06.run(fast=True)
        totals = series_by_label(experiment, "total")[0]
        assert len(totals.values) == len(experiment.x_values) == 9
        assert all(v > 0 for v in totals.values)

    def test_rs3_dominates_constrained_nfs(self):
        experiment = fig06.run(fast=True)
        totals = series_by_label(experiment, "total")[0]
        rs3 = series_by_label(experiment, "rs3")[0]
        fw_index = experiment.x_values.index("fw")
        assert rs3.values[fw_index] > 0.5 * totals.values[fw_index]


class TestFig8:
    @pytest.fixture(scope="class")
    def experiment(self):
        return fig08.run()

    def test_64b_pcie_bound(self, experiment):
        mpps = series_by_label(experiment, "Mpps")[0]
        assert 85 < mpps.values[0] < 95

    def test_large_packets_line_rate(self, experiment):
        gbps = series_by_label(experiment, "Gbps")[0]
        assert gbps.values[experiment.x_values.index("1500")] > 93

    def test_gbps_monotone_in_size(self, experiment):
        gbps = series_by_label(experiment, "Gbps")[0].values[:6]
        assert all(a <= b for a, b in zip(gbps, gbps[1:]))


class TestFig9:
    @pytest.fixture(scope="class")
    def experiment(self):
        return fig09.run(fast=True)

    def test_shared_nothing_churn_immune(self, experiment):
        sn = series_by_label(experiment, "shared-nothing")
        calm, stormy = sn[0], sn[-1]
        assert stormy.values[-1] > 0.9 * calm.values[-1]

    def test_locks_collapse(self, experiment):
        locks = series_by_label(experiment, "locks")
        calm, stormy = locks[0], locks[-1]
        assert stormy.values[-1] < 0.2 * calm.values[-1]

    def test_heavy_churn_locks_antiscale(self, experiment):
        stormy = series_by_label(experiment, "locks")[-1]
        assert stormy.values[-1] < stormy.values[0] * 2


class TestFig10:
    @pytest.fixture(scope="class")
    def experiment(self):
        return fig10.run(fast=True)

    def test_no_shared_nothing_for_dbridge_lb(self, experiment):
        labels = [s.label for s in experiment.series]
        assert not any("dbridge/shared-nothing" in label for label in labels)
        assert not any("lb/shared-nothing" in label for label in labels)
        assert any("dbridge/locks" in label for label in labels)

    def test_fw_ordering(self, experiment):
        sn = series_by_label(experiment, "fw/shared-nothing")[0]
        locks = series_by_label(experiment, "fw/locks")[0]
        tm = series_by_label(experiment, "fw/tm")[0]
        for i in range(len(sn.values)):
            assert sn.values[i] >= locks.values[i] >= tm.values[i]

    def test_policer_locks_catastrophic(self, experiment):
        locks = series_by_label(experiment, "policer/locks")[0]
        sn = series_by_label(experiment, "policer/shared-nothing")[0]
        assert sn.values[-1] / locks.values[-1] > 10


class TestFig11:
    def test_ordering_and_pcie(self):
        experiment = fig11.run(fast=True)
        sn = series_by_label(experiment, "shared-nothing")[0]
        locks = series_by_label(experiment, "maestro locks")[0]
        vpp = series_by_label(experiment, "vpp")[0]
        assert sn.values[-1] >= locks.values[-1] >= vpp.values[-1]
        assert sn.values[-1] > 85  # reaches PCIe


class TestFig14:
    def test_sn_still_best_under_zipf(self):
        experiment = fig14.run(fast=True)
        sn = series_by_label(experiment, "fw/shared-nothing")[0]
        locks = series_by_label(experiment, "fw/locks")[0]
        assert sn.values[-1] >= locks.values[-1]

    def test_zipf_below_uniform_at_scale(self):
        zipf = fig14.run(fast=True)
        uniform = fig10.run(fast=True)
        z = series_by_label(zipf, "fw/shared-nothing")[0]
        u = series_by_label(uniform, "fw/shared-nothing")[0]
        assert z.values[-1] <= u.values[-1] + 1e-6


class TestLatencyAndVerdicts:
    def test_latency_in_range(self):
        experiment = latency_exp.run(fast=True)
        for series in experiment.series:
            assert all(9.0 < v < 14.0 for v in series.values)

    def test_verdict_table_complete(self):
        experiment = verdicts_exp.run()
        table = experiment.notes[0]
        for name in ("nop", "policer", "fw", "nat", "lb", "cl"):
            assert name in table
        assert "shared-nothing" in table and "locks" in table

    def test_registry_runs_everything(self):
        assert set(EXPERIMENTS) == {
            "fig5", "fig6", "fig8", "fig9", "fig10", "fig11", "fig14",
            "latency", "verdicts",
        }


class TestRendering:
    def test_render_contains_table(self):
        text = fig08.run().render()
        assert "fig8" in text and "Gbps" in text

    def test_cli_main(self, capsys):
        from repro.eval.__main__ import main

        assert main(["fig8"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out
