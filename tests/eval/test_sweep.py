"""ParallelSweepRunner: --jobs is a wall-clock knob, never a results knob."""

import pytest

from repro import obs
from repro.eval import fig05, fig10
from repro.eval.runner import ParallelSweepRunner
from repro.obs.collect import MemoryCollector


def square_cell(cell: int) -> int:
    """Module-level so it pickles into pool workers."""
    return cell * cell


class TestRunner:
    def test_sequential_matches_parallel_in_order(self):
        cells = list(range(20))
        sequential = ParallelSweepRunner(jobs=1).map(square_cell, cells)
        parallel = ParallelSweepRunner(jobs=4).map(square_cell, cells)
        assert sequential == parallel == [c * c for c in cells]

    def test_jobs_default_and_clamping(self):
        assert ParallelSweepRunner().jobs == 1
        assert ParallelSweepRunner(jobs=0).jobs == 1
        assert ParallelSweepRunner(jobs=-3).jobs == 1
        assert ParallelSweepRunner(jobs=6).jobs == 6

    def test_empty_cells(self):
        assert ParallelSweepRunner(jobs=4).map(square_cell, []) == []

    def test_workers_capped_by_cells(self):
        mem = MemoryCollector()
        with obs.attached(mem):
            ParallelSweepRunner(jobs=8).map(square_cell, [1, 2])
        assert mem.counter_total("sweep.workers") == 2

    def test_counters_sequential(self):
        mem = MemoryCollector()
        with obs.attached(mem):
            ParallelSweepRunner(jobs=1).map(square_cell, [1, 2, 3])
        assert mem.counter_total("sweep.cells") == 3
        assert mem.counter_total("sweep.workers") == 0  # no pool spawned

    def test_sweep_span_emitted(self):
        mem = MemoryCollector()
        with obs.attached(mem):
            ParallelSweepRunner(jobs=2).map(square_cell, [1, 2, 3, 4])
        spans = mem.spans_named("eval.sweep")
        assert len(spans) == 1
        assert spans[0].attrs["n_cells"] == 4
        assert spans[0].attrs["n_workers"] == 2


class TestFigureParity:
    """Parallel figure sweeps must render byte-identically to sequential."""

    @pytest.mark.parametrize("module", [fig05, fig10], ids=["fig05", "fig10"])
    def test_fast_figures_identical_across_jobs(self, module):
        sequential = module.run(fast=True, jobs=1).render()
        parallel = module.run(fast=True, jobs=2).render()
        assert parallel == sequential

    def test_cli_jobs_flag(self, capsys):
        from repro.eval.__main__ import main

        assert main(["fig10", "--fast", "--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert main(["fig10", "--fast"]) == 0
        sequential_out = capsys.readouterr().out
        assert parallel_out == sequential_out
