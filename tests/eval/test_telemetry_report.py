"""The ``--telemetry`` demonstrator: skew fires on zipf, not uniform.

Acceptance criterion of the telemetry PR: a seeded zipf run must yield a
skew detection and a meaningful drift score while the uniform control
stays below both thresholds, and ``python -m repro.eval --telemetry``
must write the report JSON.
"""

from __future__ import annotations

import json

import pytest

from repro.eval.__main__ import main as eval_main
from repro.eval.runner import capture_telemetry_report


@pytest.fixture(scope="module")
def report():
    return capture_telemetry_report(fast=True)


class TestDetectors:
    def test_zipf_triggers_skew(self, report):
        skew = report["workloads"]["zipf"]["skew"]
        assert skew["detected"]
        assert skew["imbalance"] > skew["threshold"]

    def test_uniform_stays_balanced(self, report):
        skew = report["workloads"]["uniform"]["skew"]
        assert not skew["detected"]
        assert skew["imbalance"] < skew["threshold"]

    def test_zipf_drifts_against_uniform_prior(self, report):
        drift = report["workloads"]["zipf"]["drift"]
        assert drift["drifted"]
        assert drift["score"] > drift["threshold"]

    def test_uniform_matches_the_model(self, report):
        drift = report["workloads"]["uniform"]["drift"]
        assert not drift["drifted"]
        assert drift["score"] < drift["threshold"]

    def test_report_is_json_ready_with_full_telemetry(self, report):
        json.dumps(report)
        for label in ("uniform", "zipf"):
            telemetry = report["workloads"][label]["telemetry"]
            assert telemetry["total_packets"] == report["n_packets"]
            assert telemetry["n_cores"] == report["n_cores"]
            assert telemetry["metrics"]["packets"]["total"] == report["n_packets"]


class TestSeriesFiles:
    def test_series_dir_writes_renderable_files(self, tmp_path):
        from repro import obs

        capture_telemetry_report(fast=True, series_dir=str(tmp_path))
        for label in ("uniform", "zipf"):
            path = tmp_path / f"telemetry-{label}.jsonl"
            assert path.exists()
            sink, _ = obs.load_telemetry(str(path))
            assert sink.label == label
            assert obs.render_top(sink).startswith("== telemetry")


class TestCli:
    def test_telemetry_flag_writes_report(self, tmp_path, capsys):
        out = tmp_path / "telemetry-report.json"
        code = eval_main(
            ["verdicts", "--fast", "--telemetry", str(out)]
        )
        assert code == 0
        assert f"telemetry report written to {out}" in capsys.readouterr().err
        payload = json.loads(out.read_text())
        assert payload["workloads"]["zipf"]["skew"]["detected"]

    def test_unwritable_path_fails_cleanly(self, tmp_path, capsys):
        code = eval_main(
            ["verdicts", "--fast", "--telemetry", str(tmp_path / "no" / "x.json")]
        )
        assert code == 1
        assert "cannot write telemetry report" in capsys.readouterr().err
