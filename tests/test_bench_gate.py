"""The benchmark regression gate script, including the absolute gates.

``benchmarks/check_bench_regression.py`` is plain-script CI glue; these
tests pin its exit codes so a refactor can't silently turn a telemetry
overhead regression (or a malformed baseline) into a green build.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = (
    Path(__file__).resolve().parents[1]
    / "benchmarks"
    / "check_bench_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def _payload(
    *,
    fast=4.0,
    batch=0.04,
    overhead=-0.01,
    ceiling=0.05,
    compiled=0.9,
    fallback=0.0,
    fallback_ceiling=0.05,
    per_entry=60.0,
    per_entry_ceiling=200.0,
    rescale_ratio=1.0,
    ratio_floor=0.9,
    quick=True,
) -> dict:
    return {
        "quick": quick,
        "hash": {"batch_us_per_pkt": batch, "scalar_us_per_pkt": 20.0},
        "e2e": {"fastpath_us_per_pkt": fast, "reference_us_per_pkt": 28.0},
        "telemetry": {"overhead_frac": overhead, "ceiling_frac": ceiling},
        "compiled": {
            "compiled_us_per_pkt": compiled,
            "reference_us_per_pkt": 25.0,
            "fallback_rate": fallback,
            "fallback_ceiling": fallback_ceiling,
        },
        "rescale": {
            "per_entry_us": per_entry,
            "per_entry_ceiling_us": per_entry_ceiling,
            "post_rescale_ratio": rescale_ratio,
            "ratio_floor": ratio_floor,
        },
    }


@pytest.fixture()
def write(tmp_path):
    def _write(name: str, data: dict) -> str:
        path = tmp_path / name
        path.write_text(json.dumps(data))
        return str(path)

    return _write


def _run(write, baseline: dict, fresh: dict, *extra: str) -> int:
    return gate.main(
        [
            "--baseline", write("baseline.json", baseline),
            "--fresh", write("fresh.json", fresh),
            *extra,
        ]
    )


def test_within_tolerance_passes(write, capsys):
    assert _run(write, _payload(), _payload()) == 0
    assert "within tolerance" in capsys.readouterr().out


def test_throughput_regression_fails(write, capsys):
    fresh = _payload(fast=4.0 / (1 - 0.25) + 0.1)
    assert _run(write, _payload(), fresh) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_telemetry_overhead_over_ceiling_fails(write, capsys):
    assert _run(write, _payload(), _payload(overhead=0.06)) == 1
    assert "telemetry.overhead_frac" in capsys.readouterr().out


def test_compiled_fallback_over_ceiling_fails(write, capsys):
    """A path-coverage regression (fallback rate over the committed
    ceiling) must fail even when the wall-clock numbers look fine."""
    assert _run(write, _payload(), _payload(fallback=0.5)) == 1
    assert "compiled.fallback_rate" in capsys.readouterr().out


def test_zero_fallback_rate_is_fine(write):
    assert _run(write, _payload(), _payload(fallback=0.0)) == 0


def test_negative_overhead_is_fine(write):
    """The absolute gate must accept <= 0 values the relative math can't."""
    assert _run(write, _payload(), _payload(overhead=-0.04)) == 0


def test_migration_cost_over_ceiling_fails(write, capsys):
    """A full-shard-scan regression (per-entry migration cost over the
    committed ceiling) must fail even when wall-clock numbers look fine."""
    assert _run(write, _payload(), _payload(per_entry=250.0)) == 1
    assert "rescale.per_entry_us" in capsys.readouterr().out


def test_post_rescale_ratio_under_floor_fails(write, capsys):
    """The floor gate is the only place bigger-is-better: a rescaled
    dataplane slower than the static build must fail the build."""
    assert _run(write, _payload(), _payload(rescale_ratio=0.7)) == 1
    assert "rescale.post_rescale_ratio" in capsys.readouterr().out


def test_post_rescale_ratio_at_floor_passes(write):
    assert _run(write, _payload(), _payload(rescale_ratio=0.9)) == 0


def test_missing_rescale_section_is_a_usage_error(write, capsys):
    fresh = _payload()
    del fresh["rescale"]
    assert _run(write, _payload(), fresh) == 2
    assert "rescale." in capsys.readouterr().err


def test_missing_telemetry_section_is_a_usage_error(write, capsys):
    fresh = _payload()
    del fresh["telemetry"]
    assert _run(write, _payload(), fresh) == 2
    assert "telemetry.overhead_frac" in capsys.readouterr().err


def test_quick_mode_mismatch_rejected(write):
    assert _run(write, _payload(quick=False), _payload(quick=True)) == 2


def test_bad_tolerance_rejected(write):
    assert _run(write, _payload(), _payload(), "--tolerance", "1.5") == 2


def test_committed_baseline_has_the_gated_shape():
    """The checked-in BENCH_fastpath.json must keep every metric the
    gate reads, so CI never 2-exits on a stale baseline."""
    baseline = json.loads(
        (Path(__file__).resolve().parents[1] / "BENCH_fastpath.json").read_text()
    )
    for section, name in (*gate.GATED, *gate.CONTEXT):
        assert name in baseline[section], f"{section}.{name} missing"
    for section, _, ceiling_key in gate.ABSOLUTE:
        assert ceiling_key in baseline[section]
    for section, name, floor_key in gate.FLOORS:
        assert name in baseline[section]
        assert floor_key in baseline[section]
