"""Deliberately broken NFs, one per analyzer diagnostic.

Each class departs from the supported NF class (§5) in exactly one way so
the tests can assert that the matching pass fires — and *only* the
matching pass.  ``CleanCounter`` is the control: a well-behaved per-flow
counter no pass should flag.
"""

from __future__ import annotations

import random
import time
from typing import Any

from repro.nf.api import NF, NfContext, StateDecl, StateKind

LAN, WAN = 0, 1


class CleanCounter(NF):
    """Control: per-source counter written exactly by the book."""

    name = "clean_counter"
    ports = {"lan": LAN, "wan": WAN}

    def state(self) -> list[StateDecl]:
        return [
            StateDecl("cc_counts", StateKind.MAP, 1024),
            StateDecl("cc_chain", StateKind.DCHAIN, 1024),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        found, _ = ctx.map_get("cc_counts", (pkt.src_ip,))
        if ctx.cond(ctx.lnot(found)):
            ok, index = ctx.dchain_allocate("cc_chain")
            if ctx.cond(ok):
                ctx.map_put("cc_counts", (pkt.src_ip,), index)
        ctx.forward(self.other_port(port))


class RawBranchNF(NF):
    """MAE001: branches and compares raw on symbolic handles."""

    name = "raw_branch"
    ports = {"lan": LAN, "wan": WAN}

    def state(self) -> list[StateDecl]:
        return [
            StateDecl("rb_counts", StateKind.MAP, 1024),
            StateDecl("rb_chain", StateKind.DCHAIN, 1024),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        found, _ = ctx.map_get("rb_counts", (pkt.src_ip,))
        if found:  # raw branch: an Expr is always truthy
            ctx.drop()
        if pkt.src_port == 53:  # raw comparison on a packet field
            ctx.drop()
        ctx.forward(self.other_port(port))


class NondeterministicNF(NF):
    """MAE002: consults random/time instead of the context API."""

    name = "nondet"
    ports = {"lan": LAN, "wan": WAN}

    def state(self) -> list[StateDecl]:
        return []

    def setup(self, ctx: NfContext) -> None:
        self.seed = time.time()

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        if random.random() < 0.5:
            ctx.drop()
        ctx.forward(self.other_port(port))


class UndeclaredStateNF(NF):
    """MAE003: touches a map that state() never declared."""

    name = "undeclared"
    ports = {"lan": LAN, "wan": WAN}

    def state(self) -> list[StateDecl]:
        return [StateDecl("real_map", StateKind.MAP, 64)]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        found, _ = ctx.map_get("ghost_map", (pkt.src_ip,))
        if ctx.cond(found):
            ctx.drop()
        ctx.forward(self.other_port(port))


class UnboundedLoopNF(NF):
    """MAE004: an unbounded while loop on the packet path."""

    name = "unbounded"
    ports = {"lan": LAN, "wan": WAN}

    def state(self) -> list[StateDecl]:
        return []

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        budget = 1
        while budget > 0:
            budget -= 1
        for _ in self.ports.values():  # non-static iterable, too
            pass
        ctx.forward(self.other_port(port))


class SetIterationNF(NF):
    """MAE005: iterates a set — order unspecified across runs."""

    name = "set_iter"
    ports = {"lan": LAN, "wan": WAN}

    def state(self) -> list[StateDecl]:
        return []

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        for width in {16, 32}:
            ctx.const(0, width)
        ctx.forward(self.other_port(port))


class FlakyNF(NF):
    """MAE013: hidden mutable attribute steers the packet path.

    The AST passes cannot see this (``self.calls`` is concrete), but two
    replays of the same decision log produce different traces.
    """

    name = "flaky"
    ports = {"lan": LAN, "wan": WAN}

    def __init__(self) -> None:
        self.calls = 0

    def state(self) -> list[StateDecl]:
        return [
            StateDecl("fl_counts", StateKind.MAP, 64),
            StateDecl("fl_chain", StateKind.DCHAIN, 64),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        self.calls += 1
        if self.calls % 2 == 1:  # concrete value: invisible to taint
            found, _ = ctx.map_get("fl_counts", (pkt.src_ip,))
            if ctx.cond(found):
                ctx.drop()
        ctx.forward(self.other_port(port))


class NoActionNF(NF):
    """MAE020: falls off process without a packet operation."""

    name = "no_action"
    ports = {"lan": LAN, "wan": WAN}

    def state(self) -> list[StateDecl]:
        return []

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        return None
