"""Waiver ergonomics: multi-code comments, unknown-code rejection."""

from __future__ import annotations

import pytest

from repro.analysis import collect_waivers, lint_nf
from repro.analysis.source import gather_sources
from repro.errors import WaiverError
from repro.nf.api import NF, StateDecl, StateKind


def test_one_comment_waives_multiple_codes() -> None:
    waivers = collect_waivers(
        "x = 1\ny = 2  # maestro: waive[MAE001,MAE203]\n", "f.py"
    )
    assert waivers == {("f.py", 2): frozenset({"MAE001", "MAE203"})}


def test_whitespace_and_bracketless_forms_accepted() -> None:
    waivers = collect_waivers(
        "a  # maestro: waive[ MAE001 , MAE002 ]\n"
        "b  # maestro: waive MAE005\n",
        "f.py",
    )
    assert waivers[("f.py", 1)] == frozenset({"MAE001", "MAE002"})
    assert waivers[("f.py", 2)] == frozenset({"MAE005"})


def test_first_line_offsets_are_absolute() -> None:
    waivers = collect_waivers("z  # maestro: waive[MAE010]\n", "f.py", first_line=40)
    assert waivers == {("f.py", 40): frozenset({"MAE010"})}


def test_unknown_code_raises_with_location_and_code() -> None:
    with pytest.raises(WaiverError) as err:
        collect_waivers("bad  # maestro: waive[MAE777]\n", "nf.py", first_line=9)
    message = str(err.value)
    assert "nf.py:9" in message
    assert "MAE777" in message
    assert "known codes" in message


def test_unknown_code_in_multi_code_comment_names_only_the_bad_ones() -> None:
    with pytest.raises(WaiverError, match="MAE777") as err:
        collect_waivers("x  # maestro: waive[MAE001,MAE777]\n", "f.py")
    assert "MAE001," not in str(err.value).split("known codes")[0]


class _TypoWaiverNF(NF):
    name = "typo_waiver"
    ports = {"lan": 0, "wan": 1}

    def state(self) -> list[StateDecl]:
        return [StateDecl("tw_map", StateKind.MAP, 16)]

    def process(self, ctx, port, pkt) -> None:
        found, _ = ctx.map_get("tw_map", (pkt.src_ip,))  # maestro: waive[MAE404]
        ctx.forward(self.other_port(port))


def test_gather_sources_propagates_waiver_errors() -> None:
    with pytest.raises(WaiverError, match="MAE404"):
        gather_sources(_TypoWaiverNF())


def test_lint_surfaces_waiver_typo_as_analysis_failure() -> None:
    diagnostics = lint_nf(_TypoWaiverNF(), pipeline=False)
    (diag,) = [d for d in diagnostics if d.code == "MAE020"]
    assert "MAE404" in diag.message


def test_micro_nf_waivers_still_suppress_mae006() -> None:
    from repro.nf.nfs.micro import DualCounter

    source = gather_sources(DualCounter())
    assert any(
        "MAE006" in codes for codes in source.waivers.values()
    ), "DualCounter's bundled waivers must parse"
    diagnostics = lint_nf(DualCounter(), pipeline=False)
    assert not [d for d in diagnostics if d.code == "MAE006"]
