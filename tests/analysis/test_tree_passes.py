"""Model front end: the audit agrees with the Constraints Generator on
every bundled NF and catches forged solutions and lock plans."""

from __future__ import annotations

import pytest

from repro.analysis import Diagnostic, lint_nf
from repro.core.codegen import LockPlan, ParallelNF, Strategy
from repro.core.report import build_report
from repro.core.sharding import ConstraintsGenerator, ShardingSolution, Verdict
from repro.nf.api import NF
from repro.nf.nfs import ALL_NFS
from repro.nf.nfs.micro import (
    DhcpGuard,
    DualCounter,
    FlowCounter,
    GlobalCounter,
    SrcStats,
)
from repro.symbex.engine import explore_nf

from tests.analysis import fixtures as fx

_MICROS = [FlowCounter, SrcStats, DualCounter, GlobalCounter, DhcpGuard]


def _codes(diags: list[Diagnostic]) -> set[str]:
    return {d.code for d in diags}


def _model(nf: NF):
    tree = explore_nf(nf)
    report = build_report(nf, tree)
    solution = ConstraintsGenerator(report).solve()
    return tree, report, solution


# ------------------------------------------------------------------ #
# Zero false positives: audit vs. ConstraintsGenerator agreement
# ------------------------------------------------------------------ #
@pytest.mark.parametrize("name", sorted(ALL_NFS))
def test_audit_agrees_with_constraints_generator(name: str) -> None:
    diags = lint_nf(ALL_NFS[name]())
    assert not any(d.is_error for d in diags), [d.render() for d in diags]


@pytest.mark.parametrize("cls", _MICROS, ids=lambda c: c.__name__)
def test_audit_is_clean_on_micro_nfs(cls: type[NF]) -> None:
    diags = lint_nf(cls())
    assert not any(d.is_error for d in diags), [d.render() for d in diags]


# ------------------------------------------------------------------ #
# Forged sharding solutions (MAE010 / MAE014)
# ------------------------------------------------------------------ #
def test_forged_shard_fields_fire_mae010() -> None:
    """Policer shards on dst_ip; claiming src_port must be rejected."""
    nf = ALL_NFS["policer"]()
    tree, report, solution = _model(nf)
    assert solution.verdict is Verdict.SHARED_NOTHING
    forged = ShardingSolution(
        nf_name=solution.nf_name,
        verdict=Verdict.SHARED_NOTHING,
        per_port={port: ("src_port",) for port in solution.per_port},
    )
    diags = lint_nf(nf, tree=tree, report=report, solution=forged)
    assert "MAE010" in _codes(diags)


def test_forged_shared_nothing_on_global_state_fires_mae010() -> None:
    """GlobalCounter's verdict is LOCKS; a forged shared-nothing solution
    with no shard fields leaves every write racy."""
    nf = GlobalCounter()
    tree, report, solution = _model(nf)
    assert solution.verdict is Verdict.LOCKS
    forged = ShardingSolution(
        nf_name=solution.nf_name, verdict=Verdict.SHARED_NOTHING
    )
    diags = lint_nf(nf, tree=tree, report=report, solution=forged)
    assert "MAE010" in _codes(diags)
    assert any("shards nothing" in d.message for d in diags)


def test_forged_guard_fields_fire_mae014() -> None:
    """DhcpGuard's R5 guard pins src_ip; sharding dst_ip leaves the
    guarded forwarding read unprotected."""
    nf = DhcpGuard()
    tree, report, solution = _model(nf)
    assert solution.verdict is Verdict.SHARED_NOTHING
    assert solution.per_port.get(0) == ("src_ip",)
    forged = ShardingSolution(
        nf_name=solution.nf_name,
        verdict=Verdict.SHARED_NOTHING,
        per_port={0: ("dst_ip",)},
    )
    diags = lint_nf(nf, tree=tree, report=report, solution=forged)
    assert "MAE014" in _codes(diags)


def test_audit_reports_path_ids() -> None:
    nf = GlobalCounter()
    tree, report, _ = _model(nf)
    forged = ShardingSolution(nf_name=nf.name, verdict=Verdict.SHARED_NOTHING)
    diags = lint_nf(nf, tree=tree, report=report, solution=forged)
    assert all(d.path_id and d.path_id.startswith("port") for d in diags)


# ------------------------------------------------------------------ #
# Lock plan checks (MAE011 / MAE012)
# ------------------------------------------------------------------ #
def test_generated_lock_plans_verify_clean() -> None:
    """The real LOCKS codegen acquires every conflicting object in one
    global total order — both lock passes must agree."""
    for name in ("dbridge", "lb"):
        nf = ALL_NFS[name]()
        tree, report, solution = _model(nf)
        assert solution.verdict is Verdict.LOCKS
        plan = LockPlan.build(nf, Strategy.LOCKS)
        diags = lint_nf(
            nf, tree=tree, report=report, solution=solution, lock_plan=plan
        )
        assert not any(d.is_error for d in diags), [d.render() for d in diags]
        assert plan.order == tuple(sorted(plan.locked, key=plan.position))


def test_missing_lock_fires_mae011() -> None:
    nf = ALL_NFS["dbridge"]()
    tree, report, solution = _model(nf)
    plan = LockPlan.build(nf, Strategy.LOCKS)
    dropped = next(iter(sorted(plan.locked)))
    forged = LockPlan(
        strategy=Strategy.LOCKS,
        locked=plan.locked - {dropped},
        order=tuple(o for o in plan.order if o != dropped),
    )
    diags = lint_nf(
        nf, tree=tree, report=report, solution=solution, lock_plan=forged
    )
    assert "MAE011" in _codes(diags)
    assert any(dropped in d.message for d in diags)


def test_broken_acquisition_order_fires_mae012() -> None:
    nf = ALL_NFS["dbridge"]()
    tree, report, solution = _model(nf)
    plan = LockPlan.build(nf, Strategy.LOCKS)
    first = plan.order[0]
    duplicated = LockPlan(
        strategy=Strategy.LOCKS,
        locked=plan.locked,
        order=plan.order + (first,),
    )
    diags = lint_nf(
        nf, tree=tree, report=report, solution=solution, lock_plan=duplicated
    )
    assert "MAE012" in _codes(diags)

    unordered = LockPlan(
        strategy=Strategy.LOCKS, locked=plan.locked, order=plan.order[1:]
    )
    diags = lint_nf(
        nf, tree=tree, report=report, solution=solution, lock_plan=unordered
    )
    assert "MAE012" in _codes(diags)
    assert any("no position" in d.message for d in diags)


def test_lock_plan_helpers() -> None:
    nf = ALL_NFS["dbridge"]()
    plan = LockPlan.build(nf, Strategy.LOCKS)
    assert plan.locked == set(plan.order)
    objs = list(plan.locked)[::-1]
    assert plan.acquisition_sequence(objs) == tuple(
        sorted(set(objs), key=plan.position)
    )
    empty = LockPlan.build(nf, Strategy.SHARED_NOTHING)
    assert empty.locked == frozenset() and empty.order == ()


def test_parallel_nf_carries_its_lock_plan(analyses) -> None:
    result = analyses["dbridge"]
    parallel = analyses.maestro.parallelize(
        ALL_NFS["dbridge"](), n_cores=4, result=result
    )
    assert isinstance(parallel, ParallelNF)
    assert parallel.strategy is Strategy.LOCKS
    assert parallel.lock_plan.strategy is Strategy.LOCKS
    assert parallel.lock_plan.locked
    from repro.core.emit_c import emit_c

    rendered = emit_c(parallel)
    for obj in parallel.lock_plan.order:
        assert f"rw_lock_read(&{obj}_lock" in rendered


# ------------------------------------------------------------------ #
# Determinism replay (MAE013) and pipeline failure (MAE020)
# ------------------------------------------------------------------ #
def test_hidden_mutable_state_fires_mae013() -> None:
    diags = lint_nf(fx.FlakyNF())
    assert "MAE013" in _codes(diags)


def test_pipeline_failure_surfaces_as_mae020() -> None:
    diags = lint_nf(fx.NoActionNF())
    assert _codes(diags) == {"MAE020"}
    (diag,) = diags
    assert "SymbolicError" in diag.message


def test_maestro_analyze_lint_hook() -> None:
    from repro.core import Maestro

    maestro = Maestro(seed=5)
    result = maestro.analyze(FlowCounter(), lint=True)
    assert result.diagnostics == []
    plain = maestro.analyze(FlowCounter())
    assert plain.diagnostics == []
