"""The race sanitizer: event collection, checkers, waivers, seeded bugs.

Two seeded-bug fixtures mirror the ISSUE's acceptance criteria: a
firewall whose lock plan deliberately dropped an object (MAE101) and a
NAT-style session tracker given a forged shared-nothing verdict over the
wrong fields (MAE103).  The corpus itself must sanitize clean.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np
import pytest

from repro.analysis.race import (
    RaceMonitor,
    analyze_monitor,
    sanitize_nf,
    sanitize_parallel,
)
from repro.core.codegen import ParallelNF, Strategy
from repro.core.rss_compile import compile_rss
from repro.core.sharding import ShardingSolution, Verdict
from repro.hw.cpu import benchmark_trace
from repro.nf.api import NF, NfContext, StateDecl, StateKind
from repro.nf.nfs import ALL_NFS
from repro.nf.packet import Packet
from repro.rs3.config import RssConfiguration
from repro.rs3.fields import E810
from repro.rs3.solver import RssKeySolver
from repro.symbex.engine import explore_nf

LAN, WAN = 0, 1


# ------------------------------------------------------------------ #
# Fixtures: a NAT session tracker with a forged (wrong) verdict
# ------------------------------------------------------------------ #
class MisshardedNat(NF):
    """NAT-style per-server session table, keyed by (dst_ip, dst_port).

    The correct shard fields for port 0 are the *server* fields the map
    is keyed by; the forged solution below shards on the client fields
    instead, so two clients of one server land on different cores and
    share the same map entry — the MAE103 seeded bug.
    """

    name = "missharded_nat"
    ports = {"lan": LAN, "wan": WAN}

    def state(self) -> list[StateDecl]:
        return [
            StateDecl("msn_sessions", StateKind.MAP, 1024),
            StateDecl("msn_chain", StateKind.DCHAIN, 1024),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        if port == LAN:
            key = (pkt.dst_ip, pkt.dst_port)
            found, index = ctx.map_get("msn_sessions", key)
            if ctx.cond(found):
                ctx.dchain_rejuvenate("msn_chain", index)
            else:
                ok, index = ctx.dchain_allocate("msn_chain")
                if ctx.cond(ok):
                    ctx.map_put("msn_sessions", key, index)
            ctx.forward(WAN)
        ctx.forward(LAN)


class WaivedMisshardedNat(NF):
    """Same seeded bug, with the violating accesses waived line-by-line."""

    name = "missharded_nat_waived"
    ports = {"lan": LAN, "wan": WAN}

    def state(self) -> list[StateDecl]:
        return [
            StateDecl("msn_sessions", StateKind.MAP, 1024),
            StateDecl("msn_chain", StateKind.DCHAIN, 1024),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        if port == LAN:
            key = (pkt.dst_ip, pkt.dst_port)
            found, index = ctx.map_get("msn_sessions", key)  # maestro: waive[MAE103]
            if ctx.cond(found):
                ctx.dchain_rejuvenate("msn_chain", index)
            else:
                ok, index = ctx.dchain_allocate("msn_chain")
                if ctx.cond(ok):
                    ctx.map_put("msn_sessions", key, index)  # maestro: waive[MAE103]
            ctx.forward(WAN)
        ctx.forward(LAN)


def forged_client_sharding(nf: NF) -> ShardingSolution:
    """A wrong verdict: shared-nothing on the *client* fields."""
    return ShardingSolution(
        nf_name=nf.name,
        verdict=Verdict.SHARED_NOTHING,
        per_port={LAN: ("src_ip", "src_port")},
        explanation=["forged for the race-sanitizer seeded-bug test"],
    )


def parallel_for_solution(
    nf: NF, solution: ShardingSolution, n_cores: int = 4, seed: int = 7
) -> ParallelNF:
    """Generate a ParallelNF from an explicit (possibly forged) solution."""
    compilation = compile_rss(nf, solution, E810)
    solver = RssKeySolver(E810, compilation.port_options)
    keys = solver.solve(
        compilation.requirements, rng=np.random.default_rng(seed)
    )
    rss = RssConfiguration.build(
        keys, compilation.port_options, n_cores, reta_size=128
    )
    return ParallelNF.generate(nf, solution, rss, n_cores)


def many_clients_one_server(n_clients: int = 64, repeats: int = 3):
    """Trace where distinct clients hammer one server (one shared key).

    Client addresses vary across all src bits so the forged client-field
    sharding actually spreads them over the cores.
    """
    rng = np.random.default_rng(1234)
    trace = []
    for _ in range(n_clients):
        pkt = Packet(
            src_ip=int(rng.integers(0, 2**32)),
            dst_ip=0xC0_A8_01_01,
            src_port=int(rng.integers(1024, 2**16)),
            dst_port=80,
        )
        trace.extend([(LAN, pkt)] * repeats)
    return trace


# ------------------------------------------------------------------ #
# Corpus health: the generated plans really are race-free
# ------------------------------------------------------------------ #
class TestCorpusClean:
    @pytest.mark.parametrize("name", ["fw", "nat", "policer", "cl"])
    def test_shared_nothing_nfs_sanitize_clean(self, analyses, name) -> None:
        report = sanitize_nf(
            ALL_NFS[name](), packets=512, result=analyses[name]
        )
        assert report.clean, report.describe()
        assert report.n_events > 0
        assert report.n_packets >= 512

    @pytest.mark.parametrize("name", ["lb", "dbridge"])
    def test_lock_based_nfs_sanitize_clean(self, analyses, name) -> None:
        report = sanitize_nf(
            ALL_NFS[name](), packets=512, result=analyses[name]
        )
        assert report.strategy is Strategy.LOCKS
        assert report.clean, report.describe()

    def test_r5_excusals_are_honored_and_counted(self, analyses) -> None:
        """nat writes keyed outside the WAN shard fields (allocated
        ports) — writer colocation must excuse them, not flag them."""
        report = sanitize_nf(
            ALL_NFS["nat"](), packets=512, result=analyses["nat"]
        )
        assert report.clean, report.describe()
        assert report.excused.get("writer_colocation", 0) > 0
        assert report.excused.get("index_state", 0) > 0


# ------------------------------------------------------------------ #
# Seeded bugs
# ------------------------------------------------------------------ #
class TestSeededBugs:
    def test_dropped_lock_is_flagged_mae101(self, analyses, generator) -> None:
        """Firewall forced onto locks, then fw_flows removed from the
        plan: every access to the shared map is now unsynchronized."""
        result = analyses["fw"]
        parallel = analyses.maestro.parallelize(
            ALL_NFS["fw"](), n_cores=4, strategy=Strategy.LOCKS, result=result
        )
        plan = parallel.lock_plan
        parallel.lock_plan = dataclasses.replace(
            plan,
            locked=plan.locked - {"fw_flows"},
            order=tuple(obj for obj in plan.order if obj != "fw_flows"),
        )
        trace, _ = generator.uniform_trace(256, 64, in_port=0)
        report = sanitize_parallel(parallel, trace, tree=result.tree)
        assert not report.clean
        assert any(
            d.code == "MAE101" and "fw_flows" in d.message
            for d in report.diagnostics
        ), report.describe()
        # The surviving objects are still covered: no other codes fire.
        assert {d.code for d in report.diagnostics} == {"MAE101"}

    def test_unordered_lock_is_flagged_mae102(self, analyses, generator) -> None:
        """fw_chain stays locked but loses its position in the order:
        workers would take its lock without a rank — deadlock potential."""
        result = analyses["fw"]
        parallel = analyses.maestro.parallelize(
            ALL_NFS["fw"](), n_cores=4, strategy=Strategy.LOCKS, result=result
        )
        plan = parallel.lock_plan
        parallel.lock_plan = dataclasses.replace(
            plan,
            order=tuple(obj for obj in plan.order if obj != "fw_chain"),
        )
        trace, _ = generator.uniform_trace(256, 64, in_port=0)
        report = sanitize_parallel(parallel, trace, tree=result.tree)
        assert any(
            d.code == "MAE102" and "fw_chain" in d.message
            for d in report.diagnostics
        ), report.describe()

    def test_duplicated_order_is_flagged_mae102(self, analyses, generator) -> None:
        result = analyses["fw"]
        parallel = analyses.maestro.parallelize(
            ALL_NFS["fw"](), n_cores=4, strategy=Strategy.LOCKS, result=result
        )
        plan = parallel.lock_plan
        parallel.lock_plan = dataclasses.replace(
            plan, order=plan.order + (plan.order[0],)
        )
        trace, _ = generator.uniform_trace(256, 64, in_port=0)
        report = sanitize_parallel(parallel, trace, tree=result.tree)
        assert any(
            d.code == "MAE102" and "more than once" in d.message
            for d in report.diagnostics
        ), report.describe()

    def test_wrong_verdict_is_flagged_mae103(self) -> None:
        nf = MisshardedNat()
        parallel = parallel_for_solution(nf, forged_client_sharding(nf))
        report = sanitize_parallel(
            parallel, many_clients_one_server(), tree=explore_nf(nf)
        )
        assert not report.clean
        mae103 = [d for d in report.diagnostics if d.code == "MAE103"]
        assert mae103, report.describe()
        assert all("msn_sessions" in d.message for d in mae103)
        # Findings are anchored to the violating source line so the
        # line-scoped waiver syntax applies to them.
        assert any(d.file and d.line for d in mae103)

    def test_wrong_static_model_is_flagged_mae104(self, analyses, generator) -> None:
        """Cross-validating against a tree from a *different* NF: the
        dynamic footprints cannot be contained in its paths."""
        result = analyses["fw"]
        parallel = analyses.maestro.parallelize(
            ALL_NFS["fw"](), n_cores=4, result=result
        )
        trace, _ = generator.uniform_trace(128, 32, in_port=0)
        wrong_tree = explore_nf(ALL_NFS["nop"]())
        report = sanitize_parallel(parallel, trace, tree=wrong_tree)
        assert any(d.code == "MAE104" for d in report.diagnostics), (
            report.describe()
        )


# ------------------------------------------------------------------ #
# Waivers (satellite: line-scoped waive[MAE103] suppression)
# ------------------------------------------------------------------ #
class TestWaivers:
    def test_line_scoped_waiver_suppresses_and_is_reported(self) -> None:
        nf = WaivedMisshardedNat()
        parallel = parallel_for_solution(nf, forged_client_sharding(nf))
        report = sanitize_parallel(
            parallel, many_clients_one_server(), tree=explore_nf(nf)
        )
        assert report.clean, report.describe()
        assert not any(d.code == "MAE103" for d in report.diagnostics)
        assert any(d.code == "MAE103" for d in report.waived)
        payload = report.to_json()
        waived = [d for d in payload["diagnostics"] if d["waived"]]
        active = [d for d in payload["diagnostics"] if not d["waived"]]
        assert waived and all(d["code"] == "MAE103" for d in waived)
        assert not active
        assert payload["clean"] is True

    def test_unwaived_twin_still_fires(self) -> None:
        """Control: the identical NF without the comments is flagged."""
        nf = MisshardedNat()
        parallel = parallel_for_solution(nf, forged_client_sharding(nf))
        report = sanitize_parallel(
            parallel, many_clients_one_server(), tree=explore_nf(nf)
        )
        assert not report.clean
        assert not report.waived


# ------------------------------------------------------------------ #
# Monitor mechanics
# ------------------------------------------------------------------ #
class TestMonitor:
    def test_probes_detach_on_exit(self, analyses) -> None:
        parallel = analyses.maestro.parallelize(
            ALL_NFS["fw"](), n_cores=2, result=analyses["fw"]
        )
        monitor = RaceMonitor(parallel)
        with monitor:
            assert all(c.ctx.access_probe is not None for c in parallel.cores)
            parallel.process(0, Packet(src_ip=1, dst_ip=2, src_port=3, dst_port=4))
        assert all(c.ctx.access_probe is None for c in parallel.cores)
        events_after_exit = monitor.n_events
        parallel.process(0, Packet(src_ip=5, dst_ip=6, src_port=7, dst_port=8))
        assert monitor.n_events == events_after_exit

    def test_events_carry_keys_cores_and_ports(self, analyses) -> None:
        parallel = analyses.maestro.parallelize(
            ALL_NFS["fw"](), n_cores=2, result=analyses["fw"]
        )
        pkt = Packet(src_ip=1, dst_ip=2, src_port=3, dst_port=4)
        with RaceMonitor(parallel) as monitor:
            core_id, _ = parallel.process(0, pkt)
        (log,) = monitor.packets
        assert log.port == 0 and log.core == core_id
        ops = {(ev.obj, ev.op) for ev in log.accesses}
        assert ("fw_flows", "map_get") in ops
        keyed = [ev for ev in log.accesses if ev.op == "map_get"]
        assert all(isinstance(ev.key, tuple) for ev in keyed)

    def test_obs_counters_emitted(self, analyses) -> None:
        from repro.obs import MemoryCollector, attached

        parallel = analyses.maestro.parallelize(
            ALL_NFS["fw"](), n_cores=2, result=analyses["fw"]
        )
        trace = benchmark_trace(ALL_NFS["fw"](), n_flows=16, packets=64)
        collector = MemoryCollector()
        with attached(collector):
            report = sanitize_parallel(parallel, trace)
        names = {name for name, _attrs, _total in collector.counters()}
        assert "race.events" in names
        assert "race.violations" in names
        assert report.n_events > 0
