"""The plan certifier: corpus is green, seeded faults are caught.

Two seeded-fault fixtures mirror the ISSUE's acceptance criteria: a path
program whose lowered predicate was negated after compilation (MAE300)
and a port whose memo guard set lost a state version (MAE303).  Both
tamper with *compiled artifacts* — the certifier must catch the damage
without re-running the lowering that produced it.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis import certify_nf, collect_waivers, lint_nf
from repro.analysis.plan_passes import (
    _certify_demotion,
    _certify_memo,
    _certify_program,
    _locate,
    prove_equiv,
)
from repro.analysis.source import gather_sources
from repro.errors import WaiverError
from repro.nf.api import NF, NfContext, StateDecl, StateKind
from repro.nf.nfs import ALL_NFS
from repro.sim.compiled import _compile_port
from repro.symbex import expr as E
from repro.symbex.engine import explore_nf

LAN, WAN = 0, 1


def _compile_nf(nf, port=0):
    tree = explore_nf(nf)
    return _compile_port(nf, port, tree.paths_by_port[port], 0)


def _supported_program(pp):
    progs = [p for p in pp.programs if p.supported]
    assert progs, "fixture NF must have at least one lowered path"
    return progs[0]


# ------------------------------------------------------------------ #
# Corpus gate
# ------------------------------------------------------------------ #
@pytest.mark.parametrize("name", sorted(ALL_NFS))
def test_corpus_certifies_clean(analyses, name) -> None:
    result = analyses[name]
    report = certify_nf(
        ALL_NFS[name](), tree=result.tree, solution=result.solution
    )
    assert report.clean, [str(d) for d in report.diagnostics]
    assert report.n_proved == report.n_supported
    assert len(report.supported_pids) == report.n_supported


def test_lint_pipeline_includes_certifier(analyses) -> None:
    from repro.analysis.lint import default_passes
    from repro.analysis.plan_passes import PlanCertifyPass

    assert any(isinstance(p, PlanCertifyPass) for p in default_passes())
    diagnostics = lint_nf(ALL_NFS["fw"](), tree=analyses["fw"].tree)
    assert not [d for d in diagnostics if d.code.startswith("MAE3")]


def test_report_json_shape() -> None:
    report = certify_nf(ALL_NFS["fw"]())
    payload = report.to_json()
    assert payload["nf"] == "fw"
    assert payload["clean"] is True
    assert payload["proved"] == payload["supported"]
    assert payload["supported_pids"] == list(report.supported_pids)
    assert "certified" in report.describe()


def test_uncompiled_port_is_not_a_finding() -> None:
    """Non-hoistable expiry: the runtime builds no kernels for the port,
    so wholesale interpreter fallback is sound — recorded, not flagged."""
    from repro.analysis.__main__ import _example_nfs

    report = certify_nf(_example_nfs()["dns_guard"]())
    assert report.clean
    assert report.uncompiled, "dns_guard's expiring port must be uncompiled"
    assert "uncompiled" in report.describe()


# ------------------------------------------------------------------ #
# Seeded fault: mis-lowered predicate (MAE300)
# ------------------------------------------------------------------ #
def test_negated_predicate_is_flagged_mae300() -> None:
    pp = _compile_nf(ALL_NFS["fw"]())
    prog = _supported_program(pp)
    tampered = False
    for i, (kind, payload) in enumerate(prog.items):
        if kind == "c":
            prog.items[i] = ("c", E.Eq(payload, E.Const(1, 0)))
            tampered = True
            break
    assert tampered, "fixture path must carry at least one predicate"
    findings: list = []
    assert _certify_program(prog, findings, 0) is False
    assert {f.code for f in findings} == {"MAE300"}
    assert any("not equivalent" in f.message for f in findings)


def test_dropped_provenance_is_flagged_mae300() -> None:
    pp = _compile_nf(ALL_NFS["fw"]())
    prog = _supported_program(pp)
    prog.source_path = None
    findings: list = []
    assert _certify_program(prog, findings, 0) is False
    assert [f.code for f in findings] == ["MAE300"]
    assert "provenance" in findings[0].message


def test_rogue_trace_op_is_flagged_mae301() -> None:
    """A supported program whose source path turns out to use an op the
    kernels never lowered: the fallback set is unsound."""
    pp = _compile_nf(ALL_NFS["fw"]())
    prog = _supported_program(pp)
    entry = prog.source_path.trace[0]
    rogue = dataclasses.replace(entry, op="sketch_touch")
    prog.source_path = dataclasses.replace(
        prog.source_path, trace=prog.source_path.trace + (rogue,)
    )
    findings: list = []
    assert _certify_program(prog, findings, 0) is False
    assert any(f.code == "MAE301" for f in findings)
    assert any("LOWERED_OPS" in f.message for f in findings)


# ------------------------------------------------------------------ #
# Seeded fault: dropped memo guard (MAE303)
# ------------------------------------------------------------------ #
def test_dropped_memo_guard_is_flagged_mae303() -> None:
    pp = _compile_nf(ALL_NFS["fw"]())
    assert pp.read_objs, "fixture port must guard at least one object"
    pp.read_objs = type(pp.read_objs)()
    findings: list = []
    _certify_memo(pp, findings)
    assert findings
    assert {f.code for f in findings} == {"MAE303"}
    assert any("memo guard set" in f.message for f in findings)


def test_unpublished_bail_dirt_is_flagged_mae302() -> None:
    """A program that would bail without poisoning the aspects its own
    steps write: sibling kernel lanes could keep stale reads."""
    pp = _compile_nf(ALL_NFS["fw"]())
    prog = _supported_program(pp)
    if not any(s.sig[0] in ("vector_put", "dchain_rejuvenate",
                            "vector_borrow") for s in prog.steps):
        pytest.skip("fixture path has no publishing kernel step")
    prog.wild = type(prog.wild)()
    findings: list = []
    _certify_demotion(pp, findings)
    assert any(
        f.code == "MAE302" and "publish" in f.message for f in findings
    )


# ------------------------------------------------------------------ #
# Equivalence engine
# ------------------------------------------------------------------ #
def test_prove_equiv_zext_normalization() -> None:
    sym = E.Sym(16, "pkt.src_port")
    widened = E.Concat(32, (E.Const(16, 0), sym))
    assert prove_equiv(sym, widened) == "proved"


def test_prove_equiv_refutes_distinct_constants() -> None:
    assert prove_equiv(E.Const(32, 1), E.Const(32, 2)) == "refuted"


def test_prove_equiv_uses_path_condition() -> None:
    sym = E.Sym(32, "pkt.src_ip")
    five = E.Const(32, 5)
    assert prove_equiv(sym, five) == "refuted"
    assert prove_equiv(sym, five, [E.Eq(sym, five)]) == "proved"


# ------------------------------------------------------------------ #
# Waivers
# ------------------------------------------------------------------ #
class _WaivedGuardNF(NF):
    """Control NF whose single map probe carries an MAE303 waiver."""

    name = "waived_guard"
    ports = {"lan": LAN, "wan": WAN}

    def state(self) -> list[StateDecl]:
        return [StateDecl("wg_counts", StateKind.MAP, 64)]

    def process(self, ctx: NfContext, port: int, pkt) -> None:
        found, _ = ctx.map_get("wg_counts", (pkt.src_ip,))  # maestro: waive[MAE303]
        if ctx.cond(found):
            ctx.drop()
        ctx.forward(self.other_port(port))


def test_mae3xx_waiver_suppresses_located_finding() -> None:
    nf = _WaivedGuardNF()
    pp = _compile_nf(nf)
    pp.read_objs = type(pp.read_objs)()
    findings: list = []
    _certify_memo(pp, findings)
    assert findings
    source = gather_sources(nf)
    diagnostics = _locate(findings, nf.name, source)
    assert all(d.file and d.line for d in diagnostics)
    active = [
        d for d in diagnostics if not source.waived(d.code, d.file, d.line)
    ]
    assert not active, "the line-scoped waiver must absorb the finding"


def test_mae3xx_codes_flow_through_waiver_collector() -> None:
    waivers = collect_waivers("x  # maestro: waive[MAE300,MAE304]\n", "f.py")
    assert waivers[("f.py", 1)] == frozenset({"MAE300", "MAE304"})


def test_unregistered_mae3xx_waiver_raises() -> None:
    with pytest.raises(WaiverError, match="MAE305"):
        collect_waivers("x  # maestro: waive[MAE305]\n", "f.py")
