"""AST front end: each source pass fires on its broken fixture and stays
quiet on clean code."""

from __future__ import annotations

from typing import Any

from repro.analysis import Diagnostic, Severity, lint_nf
from repro.analysis.ast_passes import (
    BoundedLoopPass,
    DeclaredStatePass,
    NondeterminismPass,
    RawBranchPass,
)
from repro.analysis.passes import PassContext, PassManager
from repro.nf.api import NF, NfContext, StateDecl, StateKind

from tests.analysis import fixtures as fx


def _ast_lint(nf: NF) -> list[Diagnostic]:
    return lint_nf(nf, pipeline=False)


def _codes(diags: list[Diagnostic]) -> set[str]:
    return {d.code for d in diags}


def test_clean_nf_is_quiet() -> None:
    assert _ast_lint(fx.CleanCounter()) == []


def test_raw_branch_fires_mae001() -> None:
    diags = _ast_lint(fx.RawBranchNF())
    assert _codes(diags) == {"MAE001"}
    assert len(diags) == 2  # one raw branch, one raw comparison
    assert all(d.severity is Severity.ERROR for d in diags)
    # Locations point into the fixture source, at distinct lines.
    assert all(d.file and d.file.endswith("fixtures.py") for d in diags)
    assert len({d.line for d in diags}) == 2


def test_nondeterminism_fires_mae002_in_process_and_setup() -> None:
    diags = _ast_lint(fx.NondeterministicNF())
    assert _codes(diags) == {"MAE002"}
    messages = " ".join(d.message for d in diags)
    assert "time.time()" in messages and "random.random()" in messages
    assert any("setup" in d.message for d in diags)


def test_undeclared_state_fires_mae003_and_names_it() -> None:
    diags = _ast_lint(fx.UndeclaredStateNF())
    assert _codes(diags) == {"MAE003"}
    (diag,) = diags
    assert "ghost_map" in diag.message and "real_map" in diag.message


def test_unbounded_loops_fire_mae004() -> None:
    diags = _ast_lint(fx.UnboundedLoopNF())
    assert _codes(diags) == {"MAE004"}
    assert len(diags) == 2  # the while loop and the dynamic for loop


def test_set_iteration_warns_mae005_only() -> None:
    diags = _ast_lint(fx.SetIterationNF())
    assert _codes(diags) == {"MAE005"}
    assert all(d.severity is Severity.WARNING for d in diags)


class _DynamicName(NF):
    name = "dynamic_name"
    ports = {"lan": 0, "wan": 1}
    table = "dn_map"

    def state(self) -> list[StateDecl]:
        return [StateDecl("dn_map", StateKind.MAP, 64)]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        found, _ = ctx.map_get(self.table, (pkt.src_ip,))
        if ctx.cond(found):
            ctx.drop()
        ctx.forward(self.other_port(port))


class _DynamicNameWaived(NF):
    # Standalone on purpose: the scanner walks the whole class hierarchy
    # (``super().process`` delegation is common), so an unwaived base
    # method would still fire.
    name = "dynamic_name_waived"
    ports = {"lan": 0, "wan": 1}
    table = "dn_map"

    def state(self) -> list[StateDecl]:
        return [StateDecl("dn_map", StateKind.MAP, 64)]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        found, _ = ctx.map_get(self.table, (pkt.src_ip,))  # maestro: waive[MAE006]
        if ctx.cond(found):
            ctx.drop()
        ctx.forward(self.other_port(port))


def test_dynamic_state_name_warns_mae006() -> None:
    diags = _ast_lint(_DynamicName())
    assert _codes(diags) == {"MAE006"}
    assert all(not d.is_error for d in diags)


def test_inline_waiver_suppresses_exactly_that_line() -> None:
    assert _ast_lint(_DynamicNameWaived()) == []
    # The waiver is line- and code-scoped: the unwaived variant still fires.
    assert _codes(_ast_lint(_DynamicName())) == {"MAE006"}


def test_corpus_setup_loops_are_exempt() -> None:
    """StaticBridge.setup iterates its config table; setup is off the
    packet path, so MAE004 must not fire."""
    from repro.nf.nfs import StaticBridge

    diags = _ast_lint(StaticBridge())
    assert "MAE004" not in _codes(diags)


def test_pass_manager_runs_only_applicable_phases() -> None:
    pctx = PassContext.for_nf(fx.CleanCounter())
    manager = PassManager(
        [RawBranchPass(), NondeterminismPass(), DeclaredStatePass(), BoundedLoopPass()]
    )
    assert manager.run(pctx) == []
    assert not PassManager.has_errors([])
