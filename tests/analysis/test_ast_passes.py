"""AST front end: each source pass fires on its broken fixture and stays
quiet on clean code."""

from __future__ import annotations

from typing import Any

from repro.analysis import Diagnostic, Severity, lint_nf
from repro.analysis.ast_passes import (
    BoundedLoopPass,
    DeclaredStatePass,
    NondeterminismPass,
    RawBranchPass,
)
from repro.analysis.passes import PassContext, PassManager
from repro.nf.api import NF, NfContext, StateDecl, StateKind

from tests.analysis import fixtures as fx


def _ast_lint(nf: NF) -> list[Diagnostic]:
    return lint_nf(nf, pipeline=False)


def _codes(diags: list[Diagnostic]) -> set[str]:
    return {d.code for d in diags}


def test_clean_nf_is_quiet() -> None:
    assert _ast_lint(fx.CleanCounter()) == []


def test_raw_branch_fires_mae001() -> None:
    diags = _ast_lint(fx.RawBranchNF())
    assert _codes(diags) == {"MAE001"}
    assert len(diags) == 2  # one raw branch, one raw comparison
    assert all(d.severity is Severity.ERROR for d in diags)
    # Locations point into the fixture source, at distinct lines.
    assert all(d.file and d.file.endswith("fixtures.py") for d in diags)
    assert len({d.line for d in diags}) == 2


def test_nondeterminism_fires_mae002_in_process_and_setup() -> None:
    diags = _ast_lint(fx.NondeterministicNF())
    assert _codes(diags) == {"MAE002"}
    messages = " ".join(d.message for d in diags)
    assert "time.time()" in messages and "random.random()" in messages
    assert any("setup" in d.message for d in diags)


def test_undeclared_state_fires_mae003_and_names_it() -> None:
    diags = _ast_lint(fx.UndeclaredStateNF())
    assert _codes(diags) == {"MAE003"}
    (diag,) = diags
    assert "ghost_map" in diag.message and "real_map" in diag.message


def test_unbounded_loops_fire_mae004() -> None:
    diags = _ast_lint(fx.UnboundedLoopNF())
    assert _codes(diags) == {"MAE004"}
    assert len(diags) == 2  # the while loop and the dynamic for loop


def test_set_iteration_warns_mae005_only() -> None:
    diags = _ast_lint(fx.SetIterationNF())
    assert _codes(diags) == {"MAE005"}
    assert all(d.severity is Severity.WARNING for d in diags)


class _DynamicName(NF):
    name = "dynamic_name"
    ports = {"lan": 0, "wan": 1}
    table = "dn_map"

    def state(self) -> list[StateDecl]:
        return [StateDecl("dn_map", StateKind.MAP, 64)]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        found, _ = ctx.map_get(self.table, (pkt.src_ip,))
        if ctx.cond(found):
            ctx.drop()
        ctx.forward(self.other_port(port))


class _DynamicNameWaived(NF):
    # Standalone on purpose: the scanner walks the whole class hierarchy
    # (``super().process`` delegation is common), so an unwaived base
    # method would still fire.
    name = "dynamic_name_waived"
    ports = {"lan": 0, "wan": 1}
    table = "dn_map"

    def state(self) -> list[StateDecl]:
        return [StateDecl("dn_map", StateKind.MAP, 64)]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        found, _ = ctx.map_get(self.table, (pkt.src_ip,))  # maestro: waive[MAE006]
        if ctx.cond(found):
            ctx.drop()
        ctx.forward(self.other_port(port))


def test_dynamic_state_name_warns_mae006() -> None:
    diags = _ast_lint(_DynamicName())
    assert _codes(diags) == {"MAE006"}
    assert all(not d.is_error for d in diags)


def test_inline_waiver_suppresses_exactly_that_line() -> None:
    assert _ast_lint(_DynamicNameWaived()) == []
    # The waiver is line- and code-scoped: the unwaived variant still fires.
    assert _codes(_ast_lint(_DynamicName())) == {"MAE006"}


class _NestedAssignNF(NF):
    # Regression: the taint assign sits inside a branch, the raw use after
    # it at top level.  A breadth-first walk visits the outer `if y:`
    # before the nested `y = pkt.src_port` and misses the MAE001.
    name = "nested_assign"
    ports = {"lan": 0, "wan": 1}

    def state(self) -> list[StateDecl]:
        return [StateDecl("na_map", StateKind.MAP, 64)]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        y = 0
        found, _ = ctx.map_get("na_map", (pkt.src_ip,))
        if ctx.cond(found):
            y = pkt.src_port
        if y:  # raw branch on a symbolic value
            ctx.drop()
        ctx.forward(self.other_port(port))


class _LoopCarriedNF(NF):
    # Regression: y only becomes symbolic at the bottom of the loop, so
    # the branch at the top is clean on iteration 1 but raw on iteration
    # 2 — only a taint fixpoint sees it.
    name = "loop_carried"
    ports = {"lan": 0, "wan": 1}

    def state(self) -> list[StateDecl]:
        return []

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        y = 0
        for _ in (0, 1):
            if y:  # raw branch on a symbolic value (from iteration 1)
                ctx.drop()
            y = pkt.src_port
        ctx.forward(self.other_port(port))


def test_branch_on_value_assigned_in_nested_branch_fires_mae001() -> None:
    diags = _ast_lint(_NestedAssignNF())
    assert _codes(diags) == {"MAE001"}
    (diag,) = diags
    assert "branching on a symbolic value" in diag.message


def test_loop_carried_taint_fires_mae001() -> None:
    diags = _ast_lint(_LoopCarriedNF())
    assert _codes(diags) == {"MAE001"}


class _HelperMixin:
    """Plain mixin — not an NF subclass, interleaves in the MRO."""

    def helper_note(self) -> str:
        return "mixin"


class _RawBranchBase(NF):
    name = "raw_branch_base"
    ports = {"lan": 0, "wan": 1}

    def state(self) -> list[StateDecl]:
        return []

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        if pkt.src_port == 53:  # raw comparison on a packet field
            ctx.drop()
        ctx.forward(self.other_port(port))


class _MixedChild(_HelperMixin, _RawBranchBase):
    # Regression: the MRO is (_MixedChild, _HelperMixin, _RawBranchBase,
    # NF, ...); the source walk must skip the mixin and still scan the
    # NF base behind it.
    name = "mixed_child"


def test_mixin_does_not_hide_nf_base_methods() -> None:
    from repro.analysis.source import gather_sources

    source = gather_sources(_MixedChild())
    assert any(m.qualname == "_RawBranchBase.process" for m in source.methods)
    assert _codes(_ast_lint(_MixedChild())) == {"MAE001"}


class _KeywordStateNF(NF):
    # Regression: the state name goes by keyword, not positionally.
    name = "kw_state"
    ports = {"lan": 0, "wan": 1}

    def state(self) -> list[StateDecl]:
        return [StateDecl("kw_map", StateKind.MAP, 64)]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        ctx.map_erase(name="typo_map", key=(pkt.src_ip,))
        ctx.forward(self.other_port(port))


class _KeywordDynamicNF(NF):
    name = "kw_dynamic"
    ports = {"lan": 0, "wan": 1}
    table = "kw_map"

    def state(self) -> list[StateDecl]:
        return [StateDecl("kw_map", StateKind.MAP, 64)]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        ctx.map_erase(name=self.table, key=(pkt.src_ip,))
        ctx.forward(self.other_port(port))


def test_keyword_state_name_fires_mae003() -> None:
    diags = _ast_lint(_KeywordStateNF())
    assert _codes(diags) == {"MAE003"}
    (diag,) = diags
    assert "typo_map" in diag.message


def test_keyword_dynamic_state_name_fires_mae006() -> None:
    assert _codes(_ast_lint(_KeywordDynamicNF())) == {"MAE006"}


def test_corpus_setup_loops_are_exempt() -> None:
    """StaticBridge.setup iterates its config table; setup is off the
    packet path, so MAE004 must not fire."""
    from repro.nf.nfs import StaticBridge

    diags = _ast_lint(StaticBridge())
    assert "MAE004" not in _codes(diags)


def test_pass_manager_runs_only_applicable_phases() -> None:
    pctx = PassContext.for_nf(fx.CleanCounter())
    manager = PassManager(
        [RawBranchPass(), NondeterminismPass(), DeclaredStatePass(), BoundedLoopPass()]
    )
    assert manager.run(pctx) == []
    assert not PassManager.has_errors([])
