"""The ``python -m repro.analysis`` CLI: selection, rendering, exit codes."""

from __future__ import annotations

import json

import pytest

from repro.analysis.__main__ import main
from repro.analysis.diagnostics import (
    DIAGNOSTIC_CODES,
    SCHEMA_VERSION,
    Diagnostic,
    Severity,
    diagnostics_from_json,
    render_json,
    render_text,
    sort_diagnostics,
)


def test_lint_single_nf_exits_zero(capsys) -> None:
    assert main(["lint", "flow_counter"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


def test_lint_all_bundled_nfs_is_green(capsys) -> None:
    """Satellite gate: the analyzer starts green over the whole corpus."""
    assert main(["lint", "--all"]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_unknown_nf_is_a_usage_error(capsys) -> None:
    assert main(["lint", "definitely_not_an_nf"]) == 2
    assert "unknown NF" in capsys.readouterr().err


def test_no_selection_is_a_usage_error(capsys) -> None:
    assert main(["lint"]) == 2
    assert "at least one" in capsys.readouterr().err


def test_json_rendering_round_trips(capsys) -> None:
    assert main(["lint", "--json", "policer", "dhcp_guard"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == SCHEMA_VERSION
    assert payload["diagnostics"] == []
    assert diagnostics_from_json(payload) == []


def test_no_pipeline_skips_model_phase(capsys) -> None:
    # FlakyNF-style defects need the model phase; the bundled NFs are
    # AST-clean, so --no-pipeline is green and much faster.
    assert main(["lint", "--no-pipeline", "fw", "nat"]) == 0


def test_example_nfs_are_linted_by_name(capsys) -> None:
    assert main(["lint", "dns_guard", "dns_guard_stats"]) == 0


# ------------------------------------------------------------------ #
# Diagnostics core
# ------------------------------------------------------------------ #
def test_unknown_code_rejected() -> None:
    with pytest.raises(ValueError):
        Diagnostic(code="MAE999", message="nope", nf="x")


def test_registered_codes_have_severity_and_meaning() -> None:
    for code, (severity, meaning) in DIAGNOSTIC_CODES.items():
        assert code.startswith("MAE") and len(code) == 6
        assert isinstance(severity, Severity)
        assert meaning


def test_render_text_orders_errors_first() -> None:
    warn = Diagnostic.of("MAE005", "warn", nf="a")
    err = Diagnostic.of("MAE001", "err", nf="b", file="f.py", line=3)
    text = render_text([warn, err])
    lines = text.splitlines()
    assert lines[0].startswith("b: f.py:3: MAE001 [error]")
    assert lines[-1] == "1 error(s), 1 warning(s)"


def test_design_doc_lists_every_code() -> None:
    from pathlib import Path

    design = Path(__file__).resolve().parents[2] / "DESIGN.md"
    text = design.read_text()
    for code in DIAGNOSTIC_CODES:
        assert f"`{code}`" in text, f"{code} missing from DESIGN.md §8"


def test_render_json_shape() -> None:
    err = Diagnostic.of("MAE013", "diverged", nf="x", path_id="port0:[1]")
    document = json.loads(render_json([err]))
    assert document["schema"] == SCHEMA_VERSION
    (payload,) = document["diagnostics"]
    assert payload["code"] == "MAE013"
    assert payload["severity"] == "error"
    assert payload["path_id"] == "port0:[1]"
    assert err.location() == "path port0:[1]"


def test_json_schema_round_trip_rebuilds_diagnostics() -> None:
    """Satellite: the versioned payload rebuilds the exact objects, and
    payloads from another schema generation are rejected."""
    diags = [
        Diagnostic.of("MAE005", "warn", nf="b"),
        Diagnostic.of("MAE001", "err", nf="a", file="f.py", line=3),
    ]
    rebuilt = diagnostics_from_json(render_json(diags))
    assert rebuilt == sort_diagnostics(diags)
    with pytest.raises(ValueError, match="unsupported analysis schema"):
        diagnostics_from_json({"schema": "repro.analysis/0", "diagnostics": []})


def test_diagnostic_ordering_is_deterministic_and_total() -> None:
    """Satellite: sort by severity, nf, file, line, code — and every
    remaining field participates, so equal-prefix findings still order."""
    d1 = Diagnostic.of("MAE001", "z-message", nf="a", file="f.py", line=3)
    d2 = Diagnostic.of("MAE001", "a-message", nf="a", file="f.py", line=3)
    d3 = Diagnostic.of("MAE003", "m", nf="a", file="f.py", line=1)
    d4 = Diagnostic.of("MAE005", "m", nf="a", file="a.py", line=9)
    ordered = sort_diagnostics([d1, d4, d2, d3])
    assert ordered == [d3, d2, d1, d4]


def test_lint_output_is_byte_for_byte_reproducible(capsys) -> None:
    """Satellite: two identical lint runs render identical reports."""
    assert main(["lint", "--json", "fw", "policer", "dual_counter"]) == 0
    first = capsys.readouterr().out
    assert main(["lint", "--json", "fw", "policer", "dual_counter"]) == 0
    second = capsys.readouterr().out
    assert first == second


# ------------------------------------------------------------------ #
# The race subcommand
# ------------------------------------------------------------------ #
def test_race_single_nf_text_output(capsys) -> None:
    assert main(["race", "flow_counter", "--packets", "128", "--flows", "32"]) == 0
    out = capsys.readouterr().out
    assert "flow_counter" in out
    assert "clean" in out
    assert "1 NF(s) sanitized, 0 with violations" in out


def test_race_json_and_out_artifact(tmp_path, capsys) -> None:
    artifact = tmp_path / "race.json"
    assert (
        main(
            [
                "race", "global_counter", "--packets", "128",
                "--flows", "32", "--json", "--out", str(artifact),
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == SCHEMA_VERSION
    (entry,) = payload["reports"]
    assert entry["nf"] == "global_counter"
    assert entry["strategy"] == "locks"
    assert entry["clean"] is True
    assert entry["diagnostics"] == []
    assert json.loads(artifact.read_text()) == payload


def test_race_usage_errors(capsys) -> None:
    assert main(["race"]) == 2
    assert main(["race", "definitely_not_an_nf"]) == 2


def test_design_doc_lists_race_codes_in_section_9() -> None:
    """Satellite: the MAE1xx table must live in DESIGN §9 and the README
    must document the race subcommand."""
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    design = (root / "DESIGN.md").read_text()
    race_codes = [code for code in DIAGNOSTIC_CODES if code.startswith("MAE1")]
    assert race_codes, "MAE1xx codes must be registered"
    section = design[design.index("## 9.") : design.index("## 10.")]
    for code in race_codes:
        assert f"`{code}`" in section, f"{code} missing from DESIGN.md §9"
    readme = (root / "README.md").read_text()
    assert "repro.analysis race" in readme


def test_design_doc_section_10_documents_fuzzer() -> None:
    """Satellite: DESIGN §10 must describe the generator grammar, oracle,
    shrinker, and corpus triage, and the README must document the fuzz
    CLI — kept in sync with the code like the MAE tables above."""
    from pathlib import Path

    from repro.fuzz.generator import GROUP_KINDS, SHAPES
    from repro.fuzz.oracle import FAULTS
    from repro.fuzz.workloads import WORKLOAD_KINDS

    root = Path(__file__).resolve().parents[2]
    design = (root / "DESIGN.md").read_text()
    section = design[design.index("## 10.") :]
    for topic in ("grammar", "Oracle", "Shrinker", "triage"):
        assert topic in section, f"{topic} missing from DESIGN.md §10"
    for kind in GROUP_KINDS:
        assert f"`{kind}`" in section, f"group kind {kind} missing from §10"
    for kind in WORKLOAD_KINDS:
        assert f"`{kind}`" in section, f"workload {kind} missing from §10"
    for fault in FAULTS:
        assert f"`{fault}`" in section, f"fault {fault} missing from §10"
    for shape in SHAPES:
        assert f"`{shape}`" in section, f"shape {shape} missing from §10"
    assert "tests/fuzz_corpus" in section
    readme = (root / "README.md").read_text()
    assert "## Fuzzing the pipeline" in readme
    assert "python -m repro.fuzz" in readme


def test_design_doc_section_11_documents_telemetry() -> None:
    """Satellite: DESIGN §11 must document the telemetry plane — every
    window metric, the detectors' score definitions, the series-file
    event kinds, and the CLIs — and the README must carry the Telemetry
    section. Kept in sync with the code like §9/§10 above."""
    from pathlib import Path

    from repro.obs.telemetry import METRICS

    root = Path(__file__).resolve().parents[2]
    design = (root / "DESIGN.md").read_text()
    section = design[design.index("## 11.") :]
    for metric in METRICS:
        assert f"`{metric}`" in section, f"metric {metric} missing from §11"
    for topic in (
        "virtual time",
        "conservation",
        "bit-identical",
        "total-variation",
        "Flight recorder",
    ):
        assert topic in section, f"{topic} missing from DESIGN.md §11"
    # the score/threshold definitions the detectors implement
    assert "max-core share / fair share" in section
    assert "0.5 * TV(shares) + 0.5 * |Δ write_fraction|" in section
    for kind in ("`telemetry-meta`", "`window`", "`flight`"):
        assert kind in section, f"event kind {kind} missing from §11"
    for cli in ("top", "timeline", "prom", "report --json"):
        assert cli in section, f"CLI {cli} missing from §11"
    assert "telemetry.overhead_frac" in section
    readme = (root / "README.md").read_text()
    assert "## Telemetry" in readme
    assert "python -m repro.obs top" in readme
    assert "--telemetry" in readme


def test_design_doc_section_13_documents_compiled_dataplane() -> None:
    """Satellite: DESIGN §13 must document the compiled dataplane —
    every lowered op, the fallback/hazard story, the memo-invalidation
    signal, and the obs counters — and the README Performance section
    must describe the kernels. Kept in sync with the code like §9-§11."""
    from pathlib import Path

    from repro.sim.compiled import LOWERED_OPS

    root = Path(__file__).resolve().parents[2]
    design = (root / "DESIGN.md").read_text()
    # Normalize hard wraps so phrase checks don't depend on line breaks.
    section = " ".join(design[design.index("## 13.") :].split())
    for op in LOWERED_OPS:
        assert f"`{op}`" in section, f"lowered op {op} missing from §13"
    for topic in (
        "the tree is the NF's spec",
        "frozen",
        "hazard",
        "fixpoint",
        "steering_generation",
        "bit-identical",
        "interpreter",
    ):
        assert topic in section, f"{topic} missing from DESIGN.md §13"
    for counter in (
        "`compiled.paths`",
        "`compiled.hits`",
        "`compiled.fallbacks`",
    ):
        assert counter in section, f"{counter} missing from DESIGN.md §13"
    assert "compiled_coverage.py" in section
    readme = (root / "README.md").read_text()
    assert "compiled" in readme.lower()
    assert "kernels=False" in readme


# ------------------------------------------------------------------ #
# The certify subcommand
# ------------------------------------------------------------------ #
def test_certify_single_nf_text_output(capsys) -> None:
    assert main(["certify", "fw"]) == 0
    out = capsys.readouterr().out
    assert "fw" in out and "certified" in out
    assert "1 NF(s) certified, 0 with findings" in out


def test_certify_all_bundled_nfs_is_green(capsys) -> None:
    """Acceptance gate: every bundled NF's plan certifies clean."""
    assert main(["certify", "--all"]) == 0
    out = capsys.readouterr().out
    assert "0 with findings" in out


def test_certify_json_and_out_artifact(tmp_path, capsys) -> None:
    artifact = tmp_path / "certify-report.json"
    assert (
        main(["certify", "fw", "--json", "--out", str(artifact)]) == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == SCHEMA_VERSION
    (entry,) = payload["reports"]
    assert entry["nf"] == "fw"
    assert entry["clean"] is True
    assert entry["proved"] == entry["supported"]
    assert entry["supported_pids"]
    assert entry["diagnostics"] == []
    assert json.loads(artifact.read_text()) == payload


def test_certify_usage_errors(capsys) -> None:
    assert main(["certify"]) == 2
    assert main(["certify", "definitely_not_an_nf"]) == 2


def test_all_four_subcommands_share_flag_and_exit_contract(
    tmp_path, capsys
) -> None:
    """Satellite: lint/race/chain/certify accept the same --json/--out/
    --seed flags and the same exit-code table (0 clean, 2 usage)."""
    fast = {
        "lint": ["lint", "fw", "--no-pipeline"],
        "race": ["race", "fw", "--packets", "64", "--flows", "16"],
        "chain": ["chain", "--all", "--no-validate"],
        "certify": ["certify", "fw"],
    }
    for name, argv in fast.items():
        artifact = tmp_path / f"{name}.json"
        code = main(argv + ["--json", "--out", str(artifact), "--seed", "3"])
        assert code == 0, f"{name} must exit 0 on a clean run"
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == SCHEMA_VERSION, name
        assert json.loads(artifact.read_text()) == payload, name
    for name in fast:
        selector = ["definitely_not_a_file.chain"] if name == "chain" else []
        assert main([name] + selector) == 2, f"{name} must exit 2 on usage"
        capsys.readouterr()


def test_design_doc_section_14_documents_plan_certifier() -> None:
    """Satellite: the MAE3xx table must live in DESIGN §14 and the README
    must carry the "Certifying the compiled dataplane" section."""
    from pathlib import Path

    from repro.sim.compiled import LOWERED_OPS

    root = Path(__file__).resolve().parents[2]
    design = (root / "DESIGN.md").read_text()
    cert_codes = [code for code in DIAGNOSTIC_CODES if code.startswith("MAE3")]
    assert cert_codes, "MAE3xx codes must be registered"
    section = " ".join(design[design.index("## 14.") :].split())
    for code in cert_codes:
        assert f"`{code}`" in section, f"{code} missing from DESIGN.md §14"
    for op in LOWERED_OPS:
        assert f"`{op}`" in section, f"lowered op {op} missing from §14"
    for topic in (
        "translation validation",
        "zero-extension",
        "counterexample",
        "interference",
        "memo",
        "fuzz oracle",
        "waive",
    ):
        assert topic in section, f"{topic} missing from DESIGN.md §14"
    readme = (root / "README.md").read_text()
    assert "## Certifying the compiled dataplane" in readme
    assert "repro.analysis certify" in readme
    assert "--certify" in readme


# ------------------------------------------------------------------ #
# The chain subcommand
# ------------------------------------------------------------------ #
def test_chain_cli_analyzes_bundled_chains(tmp_path, capsys) -> None:
    artifact = tmp_path / "chain-report.json"
    assert (
        main(
            [
                "chain", "--all", "--no-validate", "--json",
                "--out", str(artifact),
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == SCHEMA_VERSION
    by_name = {entry["chain"]: entry for entry in payload["chains"]}
    assert by_name["fw_cl"]["mode"] == "joint"
    assert by_name["fw_cl"]["joint_keys"] is not None
    assert by_name["tap_scan"]["mode"] == "joint"
    fallback = by_name["scan_police_lb"]
    assert fallback["mode"] == "fallback"
    codes = {d["code"] for d in fallback["diagnostics"]}
    assert codes == {"MAE201", "MAE203"}
    assert fallback["clean"] is True  # warnings don't gate
    assert json.loads(artifact.read_text()) == payload


def test_chain_cli_usage_errors(capsys) -> None:
    assert main(["chain"]) == 2
    assert main(["chain", "definitely_not_a_file.chain"]) == 2


def test_design_doc_section_12_documents_chain_analysis() -> None:
    """Satellite: the MAE2xx table must live in DESIGN §12 and the README
    must carry the "Analyzing a chain" quick-start."""
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    design = (root / "DESIGN.md").read_text()
    chain_codes = [code for code in DIAGNOSTIC_CODES if code.startswith("MAE2")]
    assert chain_codes, "MAE2xx codes must be registered"
    section = design[design.index("## 12.") :]
    for code in chain_codes:
        assert f"`{code}`" in section, f"{code} missing from DESIGN.md §12"
    for topic in ("joint", "fallback", "orientation", "handoff"):
        assert topic in section, f"{topic} missing from DESIGN.md §12"
    readme = (root / "README.md").read_text()
    assert "## Analyzing a chain" in readme
    assert "repro.analysis chain" in readme
    assert ".chain" in readme


def test_design_doc_section_15_documents_elastic_scaling() -> None:
    """Satellite: DESIGN §15 must document the elastic-scaling subsystem —
    the bucket index, the two-phase handoff, the controller, MAE105, and
    the obs counters — and the README must carry the "Scaling at
    runtime" section. Kept in sync with the code like §9-§14 above."""
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    design = (root / "DESIGN.md").read_text()
    section = design[design.index("## 15.") :]
    for api in (
        "`enable_elastic(parallel)`",
        "`rescale_parallel(parallel, n)`",
        "`plan_rescale`",
        "`BucketIndex`",
        "`ShardDelta`",
        "`ElasticController`",
        "`run_elastic`",
        "`RescaleEvent`",
    ):
        assert api in section, f"{api} missing from DESIGN.md §15"
    for topic in (
        "Two-phase handoff",
        "prepare",
        "extract",
        "install",
        "commit",
        "`MAE105`",
        "`steering_generation`",
        "`rescale-gate`",
        "rescale-report.json",
    ):
        assert topic in section, f"{topic} missing from DESIGN.md §15"
    for counter in (
        "`scale.events`",
        "`scale.migrated_entries`",
        "`scale.quiesce_us`",
    ):
        assert counter in section, f"counter {counter} missing from §15"
    readme = (root / "README.md").read_text()
    assert "## Scaling at runtime" in readme
    assert "python -m repro.scale verify --all" in readme
    assert "--workload rescale" in readme
    assert "MAE105" in readme
