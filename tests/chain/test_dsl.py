"""The chain DSL: parsing, structural validation, waiver collection."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.chain import load_chain, parse_chain
from repro.chain.dsl import Egress, Wire
from repro.errors import ChainError, WaiverError

GOOD = """\
# a comment
chain demo
hop a: fw
hop b: cl
ingress 0 -> a.0
wire a.1 -> b.0
egress b.1 -> 1
ingress 1 -> b.1
wire b.0 -> a.1
egress a.0 -> 0
"""


def test_parse_good_chain() -> None:
    chain = parse_chain(GOOD, file="demo.chain")
    assert chain.name == "demo"
    assert chain.hop_order() == ["a", "b"]
    assert chain.hops["a"].nf_name == "fw"
    assert chain.ingress_ports() == [0, 1]
    assert chain.ingress_for(0).hop == "a"
    nxt = chain.next_of("a", 1)
    assert isinstance(nxt, Wire) and nxt.dst == "b" and nxt.dst_port == 0
    out = chain.next_of("b", 1)
    assert isinstance(out, Egress) and out.chain_port == 1
    assert chain.next_of("b", 7) is None
    assert "demo" in chain.describe()


def test_load_chain_reads_bundled_examples() -> None:
    root = Path(__file__).resolve().parents[2] / "examples" / "chains"
    files = sorted(root.glob("*.chain"))
    assert len(files) >= 3
    for path in files:
        chain = load_chain(path)
        assert chain.file == str(path)
        assert chain.hops and chain.ingresses and chain.egresses


@pytest.mark.parametrize(
    "text, fragment",
    [
        ("hop a: fw", "first declaration"),
        ("chain a\nchain b", "duplicate 'chain'"),
        ("chain d\nhop a: fw\nhop a: cl", "duplicate hop alias"),
        ("chain d\nhop a: fw\ningress 0 -> z.0", "unknown"),
        ("chain d\nhop a: fw\ningress 0 -> a.0\nwire a.0 -> z.1", "unknown"),
        (
            "chain d\nhop a: fw\ningress 0 -> a.0\ningress 0 -> a.1",
            "duplicate ingress",
        ),
        (
            "chain d\nhop a: fw\nhop b: cl\ningress 0 -> a.0\n"
            "wire a.1 -> b.0\negress a.1 -> 0",
            "duplicate route",
        ),
        ("chain d\nhop a: fw\ningress x -> a.0", "integer"),
        ("chain d\nhop a: fw\nwire a.b -> a.0", "malformed endpoint"),
        ("chain d\nhop a: fw\nwire a.0 b.1", "->"),
        ("chain two words", "one name"),
        ("chain d\nhop nameonly", "hop <alias>"),
    ],
)
def test_malformed_chains_are_rejected(text: str, fragment: str) -> None:
    with pytest.raises(ChainError, match=fragment):
        parse_chain(text)


def test_waiver_comments_are_line_scoped_and_validated() -> None:
    chain = parse_chain(
        "chain d\n"
        "hop a: fw  # maestro: waive[MAE201,MAE203]\n"
        "ingress 0 -> a.0\n"
        "egress a.1 -> 1\n"
    )
    assert chain.waived("MAE201", 2)
    assert chain.waived("MAE203", 2)
    assert not chain.waived("MAE201", 3)
    assert not chain.waived("MAE202", 2)
    assert not chain.waived("MAE201", None)


def test_unknown_waiver_code_fails_parse() -> None:
    with pytest.raises(WaiverError, match="MAE999"):
        parse_chain("chain d\nhop a: fw  # maestro: waive[MAE999]\n")
