"""Chain execution: sequential reference, parallel modes, handoff stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chain import (
    ParallelChain,
    SequentialChainRunner,
    benchmark_chain_trace,
    parse_chain,
)
from repro.core.pipeline import Maestro
from repro.errors import ChainError, SimulationError
from repro.nf.api import ActionKind
from repro.nf.packet import Packet
from repro.sim.functional import run_chain
from repro.sim.perf import (
    CHAIN_HANDOFF_CYCLES,
    chain_handoff_cost,
    chain_handoff_slowdown,
)

FW_CL = """\
chain fw_cl
hop fw: fw
hop cl: cl
ingress 0 -> fw.0
wire fw.1 -> cl.0
egress cl.1 -> 1
ingress 1 -> cl.1
wire cl.0 -> fw.1
egress fw.0 -> 0
"""


def _packet(seed: int = 1) -> Packet:
    rng = np.random.default_rng(seed)
    return Packet(
        src_ip=int(rng.integers(1, 2**32)),
        dst_ip=int(rng.integers(1, 2**32)),
        src_port=int(rng.integers(1, 2**16)),
        dst_port=int(rng.integers(1, 2**16)),
    )


def _parallel(chain, mode: str, n_cores: int = 4) -> ParallelChain:
    maestro = Maestro(seed=7)
    from repro.chain.runtime import instantiate_hops

    hops = {
        alias: maestro.parallelize(nf, n_cores)
        for alias, nf in instantiate_hops(chain).items()
    }
    return ParallelChain(chain=chain, hops=hops, mode=mode)


def test_sequential_runner_traverses_both_directions() -> None:
    chain = parse_chain(FW_CL)
    runner = SequentialChainRunner(chain)
    pkt = _packet()
    out = runner.process(0, pkt)
    assert out.kind is ActionKind.FORWARD
    assert out.port == 1
    assert [step.alias for step in out.steps] == ["fw", "cl"]
    back = runner.process(1, pkt.inverted())
    assert back.kind is ActionKind.FORWARD
    assert back.port == 0
    assert [step.alias for step in back.steps] == ["cl", "fw"]


def test_unseen_reply_is_dropped_by_firewall_at_chain_level() -> None:
    chain = parse_chain(FW_CL)
    runner = SequentialChainRunner(chain)
    out = runner.process(1, _packet(99))
    assert out.kind is ActionKind.DROP
    assert out.port is None


def test_unmapped_forward_port_raises_chain_error() -> None:
    chain = parse_chain(
        "chain broken\nhop tap: nop\ningress 0 -> tap.0\negress tap.0 -> 0\n"
    )
    runner = SequentialChainRunner(chain)
    with pytest.raises(ChainError, match="MAE204"):
        runner.process(0, _packet())


def test_wiring_cycle_exhausts_traversal_budget() -> None:
    chain = parse_chain(
        "chain loop\nhop a: nop\nhop b: nop\n"
        "ingress 0 -> a.0\n"
        "wire a.1 -> b.0\nwire b.1 -> a.0\n"
    )
    runner = SequentialChainRunner(chain)
    with pytest.raises(ChainError, match="cycle"):
        runner.process(0, _packet())


def test_parallel_fallback_counts_handoffs() -> None:
    chain = parse_chain(FW_CL)
    parallel = _parallel(chain, "fallback")
    trace = benchmark_chain_trace(chain, n_flows=32, packets=128, seed=3)
    run = run_chain(parallel, trace)
    assert run.hop_transitions > 0
    assert 0.0 <= run.handoff_fraction <= 1.0
    assert run.handoffs == parallel.handoffs
    assert run.hop_packets["fw"] == len(trace)
    parallel.reset_stats()
    assert parallel.handoffs == 0 and parallel.hop_transitions == 0


def test_parallel_joint_mode_requires_rss_and_pins_the_core() -> None:
    chain = parse_chain(FW_CL)
    with pytest.raises(SimulationError, match="joint"):
        _parallel(chain, "joint")
    from repro.analysis.chain_passes import analyze_chain

    report = analyze_chain(chain, validate=False)
    assert report.mode == "joint"
    maestro = Maestro(seed=7)
    from repro.chain.runtime import instantiate_hops
    from repro.rs3.config import RssConfiguration
    from repro.rs3.joint import compile_joint

    compilation = compile_joint(
        chain.ingress_ports(), report.joint_fields, report.lifted_pairs,
        maestro.nic,
    )
    rss = RssConfiguration.build(
        report.joint_keys, compilation.port_options, 4
    )
    parallel = ParallelChain(
        chain=chain,
        hops={
            alias: maestro.parallelize(nf, 4)
            for alias, nf in instantiate_hops(chain).items()
        },
        mode="joint",
        joint_rss=rss,
    )
    trace = benchmark_chain_trace(chain, n_flows=32, packets=128, seed=3)
    run = run_chain(parallel, trace)
    assert run.handoffs == 0
    for result in run.results:
        cores = {step.core for step in result.steps}
        assert len(cores) == 1  # every hop of a packet on one core


def test_unknown_mode_rejected() -> None:
    chain = parse_chain(FW_CL)
    with pytest.raises(SimulationError, match="unknown chain mode"):
        _parallel(chain, "sideways")


def test_benchmark_chain_trace_is_deterministic_and_two_sided() -> None:
    chain = parse_chain(FW_CL)
    a = benchmark_chain_trace(chain, n_flows=16, packets=64, seed=5)
    b = benchmark_chain_trace(chain, n_flows=16, packets=64, seed=5)
    assert a == b
    ports = {port for port, _ in a}
    assert ports == {0, 1}


def test_handoff_cost_model() -> None:
    assert chain_handoff_cost(0.0) == 0.0
    assert chain_handoff_cost(2.0) == pytest.approx(2 * CHAIN_HANDOFF_CYCLES)
    slow = chain_handoff_slowdown(1.0, packet_cycles=CHAIN_HANDOFF_CYCLES)
    assert slow == pytest.approx(0.5)
    assert chain_handoff_slowdown(0.0, packet_cycles=100.0) == 1.0
    with pytest.raises(ValueError):
        chain_handoff_cost(-1.0)
    with pytest.raises(ValueError):
        chain_handoff_slowdown(1.0, packet_cycles=0.0)
