"""Whole-chain analysis: composition, MAE2xx diagnostics, modes."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.chain_passes import analyze_chain
from repro.analysis.diagnostics import SCHEMA_VERSION
from repro.chain import load_chain, parse_chain

CHAINS = Path(__file__).resolve().parents[2] / "examples" / "chains"


def _codes(report) -> set[str]:
    return {d.code for d in report.diagnostics}


# ------------------------------------------------------------------ #
# The bundled example chains (the issue's acceptance gates)
# ------------------------------------------------------------------ #
def test_fw_cl_gets_one_joint_key_and_validates() -> None:
    report = analyze_chain(load_chain(CHAINS / "fw_cl.chain"))
    assert report.mode == "joint"
    assert report.clean and not report.diagnostics
    assert report.joint_fields == {
        0: ("src_ip", "dst_ip"),
        1: ("src_ip", "dst_ip"),
    }
    assert set(report.joint_keys) == {0, 1}
    assert report.lifted_pairs  # the src<->dst swap across chain ports
    assert report.equivalence is not None and report.equivalence.equivalent
    assert not report.equivalence.race_diagnostics
    assert "joint" in report.describe()


def test_tap_scan_composes_around_the_stateless_hop() -> None:
    report = analyze_chain(load_chain(CHAINS / "tap_scan.chain"))
    assert report.mode == "joint"
    assert report.clean and not report.diagnostics
    # nop imposes nothing; psd@0 pins src_ip; chain port 1 is free
    assert report.joint_fields == {0: ("src_ip",)}
    assert set(report.joint_keys) == {0, 1}
    assert report.equivalence is not None and report.equivalence.equivalent


def test_scan_police_lb_falls_back_with_warnings_only() -> None:
    report = analyze_chain(load_chain(CHAINS / "scan_police_lb.chain"))
    assert report.mode == "fallback"
    assert _codes(report) == {"MAE201", "MAE203"}
    assert report.clean  # warnings don't gate: the chain still deploys
    assert report.handoff_fraction is not None
    assert 0.0 < report.handoff_fraction <= 1.0
    assert report.handoff_cycles is not None and report.handoff_cycles > 0
    assert report.handoff_slowdown is not None
    assert 0.0 < report.handoff_slowdown < 1.0
    assert report.equivalence is not None and report.equivalence.equivalent
    assert not report.equivalence.race_diagnostics


def test_report_json_is_schema_tagged() -> None:
    report = analyze_chain(
        load_chain(CHAINS / "scan_police_lb.chain"), validate=False
    )
    payload = report.to_json()
    assert payload["schema"] == SCHEMA_VERSION
    assert payload["chain"] == "scan_police_lb"
    assert payload["mode"] == "fallback"
    assert payload["joint_keys"] is None
    assert {d["code"] for d in payload["diagnostics"]} == {"MAE201", "MAE203"}


# ------------------------------------------------------------------ #
# MAE202: opposite lock orders on different routes
# ------------------------------------------------------------------ #
LOCK_TANGLE = """\
chain lock_tangle
hop g: global_counter
hop d: dual_counter
ingress 0 -> g.0
wire g.1 -> d.0
egress d.1 -> 1
ingress 1 -> d.1
wire d.0 -> g.1
egress g.0 -> 0
"""


def test_opposite_lock_orders_are_an_error() -> None:
    report = analyze_chain(parse_chain(LOCK_TANGLE), validate=False)
    assert report.mode == "invalid"
    assert "MAE202" in _codes(report)
    assert "MAE203" in _codes(report)  # both LOCKS hops also warn
    assert not report.clean
    (mae202,) = [d for d in report.diagnostics if d.code == "MAE202"]
    assert "'g'" in mae202.message and "'d'" in mae202.message


def test_one_directional_lock_pair_is_not_a_lock_tangle() -> None:
    # Same two LOCKS hops, but only one route: g always precedes d.
    report = analyze_chain(
        parse_chain(
            "chain one_way\n"
            "hop g: global_counter\n"
            "hop d: dual_counter\n"
            "ingress 0 -> g.0\n"
            "wire g.1 -> d.0\n"
            "egress d.1 -> 1\n"
            "egress d.0 -> 0\n"
            "egress g.0 -> 0\n"
        ),
        validate=False,
    )
    assert "MAE202" not in _codes(report)
    assert report.mode == "fallback"


# ------------------------------------------------------------------ #
# MAE204: dead hops, dead wires, dangling forward ports
# ------------------------------------------------------------------ #
def test_unreachable_hop_is_mae204() -> None:
    report = analyze_chain(
        parse_chain(
            "chain dead_hop\n"
            "hop tap: nop\n"
            "hop ghost: nop\n"
            "ingress 0 -> tap.0\n"
            "egress tap.1 -> 1\n"
            "egress tap.0 -> 0\n"
            "wire ghost.1 -> tap.1\n"
            "egress ghost.0 -> 0\n"
        ),
        validate=False,
    )
    assert report.mode == "invalid"
    (diag,) = [d for d in report.diagnostics if "unreachable" in d.message]
    assert diag.code == "MAE204"
    assert "'ghost'" in diag.message


def test_dead_wire_is_mae204() -> None:
    # nop only ever forwards out of ports 0 and 1; port 5 is dead.
    report = analyze_chain(
        parse_chain(
            "chain dead_wire\n"
            "hop a: nop\n"
            "hop b: nop\n"
            "ingress 0 -> a.0\n"
            "egress a.1 -> 1\n"
            "wire a.5 -> b.0\n"
            "egress b.1 -> 1\n"
            "egress a.0 -> 0\n"
            "egress b.0 -> 0\n"
        ),
        validate=False,
    )
    assert report.mode == "invalid"
    dead = [d for d in report.diagnostics if "dead wire" in d.message]
    assert dead and all(d.code == "MAE204" for d in dead)


def test_dangling_forward_port_is_mae204() -> None:
    # nop at port 0 always forwards to port 1, which has no route.
    report = analyze_chain(
        parse_chain(
            "chain dangling\n"
            "hop tap: nop\n"
            "ingress 0 -> tap.0\n"
            "egress tap.0 -> 0\n"
        ),
        validate=False,
    )
    assert report.mode == "invalid"
    (diag,) = report.diagnostics
    assert diag.code == "MAE204"
    assert "no wire or egress" in diag.message


def test_unknown_nf_name_is_mae200() -> None:
    report = analyze_chain(
        parse_chain(
            "chain unknown\nhop a: no_such_nf\n"
            "ingress 0 -> a.0\negress a.1 -> 1\n"
        ),
        validate=False,
    )
    assert report.mode == "invalid"
    (diag,) = report.diagnostics
    assert diag.code == "MAE200"
    assert "no_such_nf" in diag.message


# ------------------------------------------------------------------ #
# Orientation search and rewrite exclusion
# ------------------------------------------------------------------ #
def test_fw_against_itself_reversed_uses_swap_orientation() -> None:
    # Second firewall mounted backwards: its LAN faces the chain's WAN.
    # Identity orientation still works here (fw shards on the full
    # 4-tuple at both ports), so the analyzer must stay joint.
    report = analyze_chain(
        parse_chain(
            "chain fw_fw\n"
            "hop a: fw\n"
            "hop b: fw\n"
            "ingress 0 -> a.0\n"
            "wire a.1 -> b.1\n"
            "egress b.0 -> 1\n"
            "ingress 1 -> b.0\n"
            "wire b.1 -> a.1\n"
            "egress a.0 -> 0\n"
        ),
        validate=False,
    )
    assert report.mode == "joint"
    assert report.clean


def test_upstream_rewrite_excludes_fields_from_the_joint_key() -> None:
    # lb rewrites dst_ip before cl sees the packet; cl shards on the IP
    # pair, so dst_ip must drop out — and with src_ip still available the
    # (coarser) joint key survives.  The lb hop itself is LOCKS, which
    # forces fallback; the point here is that composition must not pick
    # a rewritten field, so we check the MAE201 absence.
    report = analyze_chain(
        parse_chain(
            "chain rewrite\n"
            "hop lb: lb\n"
            "hop cl: cl\n"
            "ingress 0 -> lb.0\n"
            "wire lb.1 -> cl.0\n"
            "egress cl.1 -> 1\n"
            "ingress 1 -> cl.1\n"
            "wire cl.0 -> lb.1\n"
            "egress lb.0 -> 0\n"
        ),
        validate=False,
    )
    assert "MAE201" not in _codes(report)
    assert "MAE203" in _codes(report)  # lb still forces fallback
    assert report.mode == "fallback"


# ------------------------------------------------------------------ #
# Waivers
# ------------------------------------------------------------------ #
def test_chain_waivers_move_diagnostics_aside() -> None:
    text = (CHAINS / "scan_police_lb.chain").read_text()
    waived = text.replace(
        "hop lb: lb",
        "hop lb: lb  # maestro: waive[MAE203]",
    ).replace(
        "ingress 0 -> scan.0",
        "ingress 0 -> scan.0  # maestro: waive[MAE201]",
    )
    report = analyze_chain(parse_chain(waived, file="waived.chain"), validate=False)
    assert not report.diagnostics
    assert {d.code for d in report.waived} == {"MAE201", "MAE203"}
    assert report.clean
