"""Execution-tree artifacts: Path/TraceEntry/Action helpers."""

import pytest

from repro.nf.api import ActionKind
from repro.nf.nfs import Firewall, Nat
from repro.symbex import explore_nf
from repro.symbex.tree import Action


class TestAction:
    def test_describe_forward(self):
        action = Action(kind=ActionKind.FORWARD, port=1)
        assert "forward" in action.describe()
        assert "1" in action.describe()

    def test_describe_drop(self):
        assert Action(kind=ActionKind.DROP).describe() == "drop"

    def test_describe_mentions_rewrites(self):
        tree = explore_nf(Nat())
        rewriting = [
            p for p in tree.paths(0) if p.action.kind is ActionKind.FORWARD
        ]
        assert rewriting
        assert "rewrites" in rewriting[0].action.describe()


class TestTraceEntry:
    def test_result_lookup(self):
        tree = explore_nf(Firewall())
        for path in tree.paths(0):
            for entry in path.trace:
                if entry.op == "map_get":
                    assert entry.result("found").width == 1
                    with pytest.raises(KeyError):
                        entry.result("nonexistent")


class TestExecutionTree:
    def test_ports_sorted(self):
        tree = explore_nf(Firewall())
        assert tree.ports == [0, 1]

    def test_paths_none_returns_all(self):
        tree = explore_nf(Firewall())
        assert len(tree.paths()) == len(tree.paths(0)) + len(tree.paths(1))

    def test_objects_enumerated(self):
        tree = explore_nf(Firewall())
        assert "fw_flows" in tree.objects()

    def test_stateful_entries_exclude_maintenance(self):
        tree = explore_nf(Firewall())
        for path in tree.paths():
            for entry in path.stateful_entries():
                assert not entry.maintenance
