"""Replay determinism and footprint composition across chain hops.

The chain analyzer composes per-hop symbex footprints along the wire
map; that is only sound if (a) every hop's paths replay
deterministically on the ports the chain actually feeds them, and
(b) the per-hop forwarding/rewrite summaries the analyzer derives from
the trees are faithful for empty (stateless) and port-dead hops.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.chain_passes import analyze_chain
from repro.chain import load_chain, parse_chain
from repro.chain.runtime import instantiate_hops
from repro.symbex import explore_nf
from repro.symbex.engine import replay_path

CHAINS = Path(__file__).resolve().parents[2] / "examples" / "chains"


def test_replay_is_deterministic_on_chain_fed_ports() -> None:
    """Replay every path of every hop twice, restricted to the hop ports
    the chain wiring actually feeds (ingresses plus wire destinations)."""
    chain = load_chain(CHAINS / "fw_cl.chain")
    nfs = instantiate_hops(chain)
    fed: dict[str, set[int]] = {alias: set() for alias in nfs}
    for ing in chain.ingresses:
        fed[ing.hop].add(ing.port)
    for wire in chain.wires:
        fed[wire.dst].add(wire.dst_port)
    assert all(fed.values()), "chain wiring feeds every hop"
    for alias, nf in nfs.items():
        tree = explore_nf(nf)
        for port in sorted(fed[alias]):
            paths = tree.paths(port)
            assert paths, f"{alias} has no paths on chain-fed port {port}"
            for path in paths:
                first = replay_path(nf, port, path.decisions)
                second = replay_path(nf, port, path.decisions)
                assert first == second
                assert first[0] == path.decisions


def test_downstream_hop_replays_on_upstream_output_ports() -> None:
    """Hop 2's replay ports must come from hop 1's concrete forward
    targets — the exact composition step the chain analyzer performs."""
    chain = load_chain(CHAINS / "fw_cl.chain")
    nfs = instantiate_hops(chain)
    fw_tree = explore_nf(nfs["fw"])
    # fw's concrete forward ports out of the chain ingress port
    out_ports = {
        path.action.port
        for path in fw_tree.paths(chain.ingress_for(0).port)
        if isinstance(path.action.port, int)
    }
    assert out_ports == {1}
    cl_ports = set()
    for out in out_ports:
        nxt = chain.next_of("fw", out)
        assert nxt is not None and hasattr(nxt, "dst")
        cl_ports.add(nxt.dst_port)
    cl = nfs["cl"]
    cl_tree = explore_nf(cl)
    for port in cl_ports:
        for path in cl_tree.paths(port):
            assert replay_path(cl, port, path.decisions) == replay_path(
                cl, port, path.decisions
            )


def test_footprint_composition_skips_empty_hops() -> None:
    """A stateless hop (nop) contributes an empty footprint: no sharding
    constraint, no rewrites — the composed joint fields come entirely
    from the stateful hop."""
    report = analyze_chain(load_chain(CHAINS / "tap_scan.chain"), validate=False)
    tap = report.hops["tap"]
    assert not tap.result.solution.per_port  # no constraints at all
    assert all(not mods for mods in tap.mods_by_port.values())
    assert report.joint_fields == {0: ("src_ip",)}


def test_footprint_composition_ignores_port_dead_paths() -> None:
    """A hop port the chain never feeds contributes nothing: psd's
    monitored port has constraints, but when only the reply port is
    wired the composition sees no constraint from it."""
    chain = parse_chain(
        "chain reply_only\n"
        "hop scan: psd\n"
        "ingress 0 -> scan.1\n"   # feed only the reply port
        "egress scan.0 -> 1\n"
        "egress scan.1 -> 0\n"
    )
    report = analyze_chain(chain, validate=False)
    scan = report.hops["scan"]
    # the NF itself still shards on src_ip at its monitored port 0 ...
    assert scan.result.solution.per_port.get(0)
    # ... but the chain never reaches it, so the joint key is free
    assert report.joint_fields.get(0) is None
    assert report.mode == "joint"
    assert report.clean
