"""Lowering edge cases: empty programs, absent fields, duplicate ops.

`check_expr`/`eval_expr` are the contract between the symbolic engine
and the compiled dataplane; `interpret_program` re-executes lowered
programs for the plan certifier.  These tests pin the corners: a
program with no items, a predicate naming a field the packet columns
never bind, and paths that repeat one op (whose shared subexpressions
the evaluator must deduplicate, not recompute).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.symbex import expr as E
from repro.symbex.lower import Column, LowerError, as_bool, check_expr, eval_expr
from repro.symbex.symkernel import (
    SymKernelError,
    base_symbols,
    interpret_program,
    strip_zext,
)
from repro.symbex.tree import ActionKind


def _col(values) -> Column:
    return Column(np.asarray(values, dtype=np.int64))


class _FakeProg:
    """Minimal path-program shape `interpret_program` accepts."""

    def __init__(self, items, *, supported=True, kind=ActionKind.FORWARD,
                 port_const=1, port_expr=None, mods=()):
        self.items = items
        self.supported = supported
        self.kind = kind
        self.port_const = port_const
        self.port_expr = port_expr
        self.mods = mods


# ------------------------------------------------------------------ #
# check_expr
# ------------------------------------------------------------------ #
def test_check_expr_rejects_field_absent_from_columns() -> None:
    """A predicate over a symbol the packet columns never bind must be
    refused at compile time, not mis-evaluated at run time."""
    ghost = E.Sym(32, "pkt.vlan_id")
    pred = E.Eq(ghost, E.Const(32, 7))
    with pytest.raises(LowerError, match="pkt.vlan_id"):
        check_expr(pred, {"pkt.src_ip"}, set())


def test_check_expr_records_consumed_symbols() -> None:
    used: set = set()
    pred = E.Eq(E.Sym(32, "pkt.src_ip"), E.Sym(32, "pkt.dst_ip"))
    check_expr(pred, {"pkt.src_ip", "pkt.dst_ip"}, used)
    assert used == {"pkt.src_ip", "pkt.dst_ip"}


def test_check_expr_rejects_oversized_constant() -> None:
    with pytest.raises(LowerError, match="constant too large"):
        check_expr(E.Const(128, 1 << 63), set(), set())


def test_check_expr_rejects_non_zext_concat() -> None:
    packed = E.Concat(64, (E.Sym(32, "pkt.src_ip"), E.Sym(32, "pkt.dst_ip")))
    with pytest.raises(LowerError, match="non-zext Concat"):
        check_expr(packed, {"pkt.src_ip", "pkt.dst_ip"}, set())


# ------------------------------------------------------------------ #
# eval_expr
# ------------------------------------------------------------------ #
def test_eval_zext_concat_is_a_pass_through() -> None:
    sym = E.Sym(16, "pkt.src_port")
    widened = E.Concat(32, (E.Const(16, 0), sym))
    env = {"pkt.src_port": _col([53, 80, 443])}
    out = eval_expr(widened, env, {})
    assert list(out.arr) == [53, 80, 443]


def test_eval_duplicate_subexpressions_hit_the_cache() -> None:
    """Duplicate-op paths share constraint prefixes; the evaluator must
    compute each distinct expression once (cache keyed structurally)."""
    sym = E.Sym(32, "pkt.src_ip")
    pred = E.Eq(sym, E.Const(32, 9))
    twin = E.Eq(E.Sym(32, "pkt.src_ip"), E.Const(32, 9))
    env = {"pkt.src_ip": _col([9, 4])}
    cache: dict = {}
    first = eval_expr(pred, env, cache)
    second = eval_expr(twin, env, cache)
    assert second is first, "structurally equal exprs must share a column"
    assert list(as_bool(first)) == [True, False]


def test_eval_bool_ops_match_python_semantics() -> None:
    a = E.Sym(32, "pkt.src_ip")
    b = E.Sym(32, "pkt.dst_ip")
    env = {"pkt.src_ip": _col([1, 5, 5]), "pkt.dst_ip": _col([5, 5, 1])}
    lt = eval_expr(E.Ult(a, b), env, {})
    eq = eval_expr(E.Eq(a, b), env, {})
    assert list(as_bool(lt)) == [True, False, False]
    assert list(as_bool(eq)) == [False, True, False]


# ------------------------------------------------------------------ #
# interpret_program edge cases
# ------------------------------------------------------------------ #
def test_empty_program_interprets_to_empty_outcome() -> None:
    outcome = interpret_program(_FakeProg([], port_const=1))
    assert outcome.constraints == ()
    assert outcome.steps == ()
    assert outcome.port == 1
    assert outcome.mods == ()
    assert outcome.bound == base_symbols()


def test_empty_demoted_program_has_no_action() -> None:
    outcome = interpret_program(_FakeProg([], supported=False))
    assert outcome.port is None and outcome.mods == ()


def test_predicate_on_unbound_field_is_malformed() -> None:
    pred = E.Eq(E.Sym(32, "ghost_field"), E.Const(32, 1))
    with pytest.raises(SymKernelError, match="ghost_field"):
        interpret_program(_FakeProg([("c", pred)]))


def test_duplicate_op_path_binds_each_result_separately() -> None:
    class _Step:
        def __init__(self, sig):
            self.sig = sig

    key = (E.Sym(32, "pkt.src_ip"),)
    first = _Step(("map_get", "m", key, "found0", "value0"))
    second = _Step(("map_get", "m", key, "found1", "value1"))
    use = E.Eq(E.Sym(1, "found1"), E.Const(1, 1))
    outcome = interpret_program(
        _FakeProg([("op", first), ("op", second), ("c", use)])
    )
    assert [s.binds for s in outcome.steps] == [
        ("found0", "value0"), ("found1", "value1"),
    ]
    assert {"found0", "value0", "found1", "value1"} <= outcome.bound


def test_reordered_program_consuming_early_is_malformed() -> None:
    """A predicate hoisted above the step that binds its symbol is a
    truncated/reordered lowering, not a provable one."""

    class _Step:
        def __init__(self, sig):
            self.sig = sig

    probe = _Step(("map_get", "m", (E.Sym(32, "pkt.src_ip"),), "f", "v"))
    early = E.Eq(E.Sym(1, "f"), E.Const(1, 1))
    with pytest.raises(SymKernelError, match="not bound"):
        interpret_program(_FakeProg([("c", early), ("op", probe)]))


def test_unknown_op_is_rejected() -> None:
    class _Step:
        sig = ("sketch_touch", "s", ())

    with pytest.raises(SymKernelError, match="unknown lowered op"):
        interpret_program(_FakeProg([("op", _Step())]))


# ------------------------------------------------------------------ #
# strip_zext normalization
# ------------------------------------------------------------------ #
def test_strip_zext_unwraps_nested_extensions() -> None:
    sym = E.Sym(16, "pkt.src_port")
    once = E.Concat(32, (E.Const(16, 0), sym))
    twice = E.Concat(64, (E.Const(32, 0), once))
    assert strip_zext(twice) is sym


def test_strip_zext_extract_identity_and_zero_slices() -> None:
    sym = E.Sym(16, "pkt.src_port")
    widened = E.Concat(64, (E.Const(48, 0), sym))
    assert strip_zext(E.Extract(16, widened, 15, 0)) is sym
    high = strip_zext(E.Extract(16, widened, 47, 32))
    assert isinstance(high, E.Const) and high.value == 0


def test_strip_zext_reextends_mixed_width_arithmetic() -> None:
    narrow = E.Sym(16, "pkt.src_port")
    wide = E.Sym(32, "pkt.src_ip")
    mixed = E.Add(E.Concat(32, (E.Const(16, 0), narrow)), wide)
    normalized = strip_zext(mixed)
    assert normalized.lhs.width == normalized.rhs.width == 32
    assert E.structurally_equal(strip_zext(mixed), normalized)
