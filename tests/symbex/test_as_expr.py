"""Regression: plain-int lifting produces exactly ``width`` bits.

The old behaviour widened large constants to their bit length, which made
structurally identical keys compare unequal downstream (positional
unification treats widths as part of the shape)."""

from __future__ import annotations

import pytest

from repro.errors import SymbolicError
from repro.symbex import expr as E
from repro.symbex.engine import _VALUE_WIDTH, _as_expr


def test_int_lifts_to_exact_default_width() -> None:
    lifted = _as_expr(5)
    assert isinstance(lifted, E.Const)
    assert lifted.width == _VALUE_WIDTH
    assert lifted.value == 5


@pytest.mark.parametrize("width", [8, 16, 32, 64])
def test_int_lifts_to_requested_width(width: int) -> None:
    lifted = _as_expr(3, width)
    assert lifted.width == width
    assert lifted.value == 3


def test_max_value_for_width_still_fits() -> None:
    lifted = _as_expr(0xFFFF, 16)
    assert lifted.width == 16
    assert lifted.value == 0xFFFF


def test_overflowing_int_raises_instead_of_widening() -> None:
    with pytest.raises(SymbolicError, match="does not fit in 16 bits"):
        _as_expr(0x1_0000, 16)
    with pytest.raises(SymbolicError, match="ctx.const"):
        _as_expr(0xAABBCCDDEEFF, 16)  # a MAC address needs an explicit width


def test_bool_and_expr_passthrough_unchanged() -> None:
    assert _as_expr(True) == E.Const(1, 1)
    assert _as_expr(False) == E.Const(1, 0)
    sym = E.Sym("pkt.src_ip", 32)
    assert _as_expr(sym) is sym


def test_lifted_constants_unify_structurally() -> None:
    # Two lifts of the same value at the same width are the same node —
    # the property the sharding rules' positional unification relies on.
    assert _as_expr(7, 32) == _as_expr(7, 32)
    assert _as_expr(7, 32) != _as_expr(7, 16)
