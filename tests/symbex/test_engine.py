"""ESE engine: path enumeration, tracing, pruning, explosion guards."""

import pytest

from repro.errors import PathExplosionError
from repro.nf.api import NF, ActionKind, NfContext, StateDecl, StateKind
from repro.nf.nfs import Firewall, Nat, Nop, PortScanDetector
from repro.symbex import explore_nf
from repro.symbex import expr as E


class TestNopExploration:
    def test_single_path_per_port(self):
        tree = explore_nf(Nop())
        assert {p: len(tree.paths_by_port[p]) for p in tree.ports} == {0: 1, 1: 1}

    def test_action_is_forward_to_other_port(self):
        tree = explore_nf(Nop())
        (path,) = tree.paths(0)
        assert path.action.kind is ActionKind.FORWARD
        assert path.action.port == 1

    def test_no_stateful_entries(self):
        tree = explore_nf(Nop())
        assert list(tree.entries()) == []


class TestFirewallExploration:
    def test_lan_paths(self):
        tree = explore_nf(Firewall())
        # found / allocated / allocation-failed
        assert len(tree.paths(0)) == 3

    def test_wan_paths(self):
        tree = explore_nf(Firewall())
        assert len(tree.paths(1)) == 2

    def test_wan_miss_drops(self):
        tree = explore_nf(Firewall())
        actions = {p.action.kind for p in tree.paths(1)}
        assert actions == {ActionKind.FORWARD, ActionKind.DROP}

    def test_trace_records_flow_key(self):
        tree = explore_nf(Firewall())
        gets = [
            entry
            for _, entry in tree.entries()
            if entry.op == "map_get" and entry.obj == "fw_flows"
        ]
        assert gets
        for entry in gets:
            assert entry.key is not None and len(entry.key) == 4
            names = {s.name for part in entry.key for s in E.free_symbols(part)}
            assert names <= {
                "pkt.src_ip",
                "pkt.dst_ip",
                "pkt.src_port",
                "pkt.dst_port",
            }

    def test_constraints_snapshot_monotone(self):
        tree = explore_nf(Firewall())
        for path in tree.paths():
            previous = -1
            for entry in path.trace:
                assert entry.pc_len >= previous - 0  # non-decreasing
                assert entry.pc_len <= len(path.constraints)
                previous = entry.pc_len

    def test_origins_cover_results(self):
        tree = explore_nf(Firewall())
        for path in tree.paths():
            for entry in path.trace:
                for _, symbol in entry.results:
                    assert symbol.name in path.origins

    def test_deterministic(self):
        t1 = explore_nf(Firewall())
        t2 = explore_nf(Firewall())
        for port in t1.ports:
            d1 = sorted(p.decisions for p in t1.paths(port))
            d2 = sorted(p.decisions for p in t2.paths(port))
            assert d1 == d2


class TestPruning:
    def test_infeasible_branch_pruned(self):
        class Contradictory(NF):
            name = "contradictory"
            ports = {"a": 0, "b": 1}

            def state(self):
                return []

            def process(self, ctx, port, pkt):
                is_http = ctx.eq(pkt.dst_port, ctx.const(80, 16))
                if ctx.cond(is_http):
                    # Inside: dst_port == 80, so this cond can only be True.
                    if ctx.cond(ctx.eq(pkt.dst_port, ctx.const(80, 16))):
                        ctx.forward(1)
                    ctx.drop()  # infeasible
                ctx.drop()

        tree = explore_nf(Contradictory())
        assert len(tree.paths(0)) == 2  # http-forward + non-http-drop


class TestExplosionGuard:
    def test_unbounded_forking_raises(self):
        class Exploder(NF):
            name = "exploder"
            ports = {"a": 0, "b": 1}

            def state(self):
                return []

            def process(self, ctx, port, pkt):
                # Each comparison is independent: the tree doubles per
                # iteration (equalities would be pruned as contradictory).
                for i in range(64):
                    ctx.cond(ctx.lt(pkt.src_ip, ctx.const(1 + i * 1000, 32)))
                ctx.drop()

        with pytest.raises(PathExplosionError):
            explore_nf(Exploder(), max_paths=100)


class TestNatProvenance:
    def test_vector_put_records_provenance(self):
        tree = explore_nf(Nat())
        puts = [
            entry
            for _, entry in tree.entries()
            if entry.op == "vector_put" and entry.obj == "nat_entries"
        ]
        assert puts
        stored = dict(puts[0].stored)
        assert set(stored) == {"src_ip", "src_port", "dst_ip", "dst_port"}
        assert stored["dst_ip"] == E.Sym(32, "pkt.dst_ip")

    def test_missing_packet_op_detected(self):
        class Silent(NF):
            name = "silent"
            ports = {"a": 0, "b": 1}

            def state(self):
                return []

            def process(self, ctx, port, pkt):
                return None  # forgets to forward/drop

        with pytest.raises(Exception):
            explore_nf(Silent())


class TestSummary:
    def test_summary_mentions_all_paths(self):
        tree = explore_nf(PortScanDetector())
        text = tree.summary()
        assert "psd" in text
        port0_lines = [
            line for line in text.splitlines() if line.startswith("  port 0:")
        ]
        assert len(port0_lines) == len(tree.paths(0))
