"""Symbolic expression IR: widths, evaluation, substitution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SymbolicError
from repro.symbex import expr as E


class TestConstruction:
    def test_const_masks_to_width(self):
        assert E.Const(8, 0x1FF).value == 0xFF

    def test_const_rejects_zero_width(self):
        with pytest.raises(SymbolicError):
            E.Const(0, 1)

    def test_concat_width(self):
        c = E.Concat.of(E.Const(8, 1), E.Const(16, 2))
        assert c.width == 24

    def test_concat_empty_rejected(self):
        with pytest.raises(SymbolicError):
            E.Concat(0, ())

    def test_extract_bounds_checked(self):
        with pytest.raises(SymbolicError):
            E.Const(8, 0).extract(8, 0)

    def test_arith_width_mismatch_rejected(self):
        with pytest.raises(SymbolicError):
            E.Add(E.Const(8, 1), E.Const(16, 1))

    def test_structural_equality_and_hash(self):
        a1 = E.Eq(E.Sym(32, "x"), E.Const(32, 5))
        a2 = E.Eq(E.Sym(32, "x"), E.Const(32, 5))
        assert a1 == a2 and hash(a1) == hash(a2)

    def test_eq_ne_not_confused(self):
        x = E.Sym(32, "x")
        assert E.Eq(x, x) != E.Ne(x, x)


class TestEvaluate:
    def test_concat_msb_first(self):
        c = E.Concat.of(E.Const(8, 0xAB), E.Const(8, 0xCD))
        assert E.evaluate(c, {}) == 0xABCD

    def test_extract(self):
        value = E.Const(16, 0xABCD)
        assert E.evaluate(value.extract(15, 8), {}) == 0xAB
        assert E.evaluate(value.extract(7, 0), {}) == 0xCD

    def test_symbols_from_env(self):
        x = E.Sym(16, "x")
        assert E.evaluate(E.Add(x, E.Const(16, 1)), {"x": 0xFFFF}) == 0

    def test_missing_binding_raises(self):
        with pytest.raises(SymbolicError):
            E.evaluate(E.Sym(8, "nope"), {})

    def test_comparisons(self):
        env = {"a": 3, "b": 5}
        a, b = E.Sym(8, "a"), E.Sym(8, "b")
        assert E.evaluate(E.Ult(a, b), env) == 1
        assert E.evaluate(E.Ugt(a, b), env) == 0
        assert E.evaluate(E.Ne(a, b), env) == 1

    def test_boolean_ops(self):
        t, f = E.TRUE, E.FALSE
        assert E.evaluate(E.And(t, f), {}) == 0
        assert E.evaluate(E.Or(t, f), {}) == 1
        assert E.evaluate(E.Not(f), {}) == 1

    def test_uninterp_deterministic_and_width_bounded(self):
        u = E.Uninterp(8, "h", (E.Const(32, 5),))
        first = E.evaluate(u, {})
        assert first == E.evaluate(u, {})
        assert 0 <= first < 256

    def test_uninterp_depends_on_args(self):
        u1 = E.Uninterp(32, "h", (E.Const(32, 5),))
        u2 = E.Uninterp(32, "h", (E.Const(32, 6),))
        assert E.evaluate(u1, {}) != E.evaluate(u2, {})

    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    @settings(max_examples=50, deadline=None)
    def test_modular_arithmetic(self, a, b):
        ea, eb = E.Const(16, a), E.Const(16, b)
        assert E.evaluate(E.Add(ea, eb), {}) == (a + b) % 2**16
        assert E.evaluate(E.Sub(ea, eb), {}) == (a - b) % 2**16
        assert E.evaluate(E.Mul(ea, eb), {}) == (a * b) % 2**16


class TestSubstituteAndSymbols:
    def test_free_symbols(self):
        x, y = E.Sym(32, "x"), E.Sym(32, "y")
        expr = E.And(E.Eq(x, y), E.Ult(x, E.Const(32, 9)))
        assert E.free_symbols(expr) == {x, y}

    def test_substitute_replaces(self):
        x = E.Sym(32, "x")
        expr = E.Add(x, E.Const(32, 1))
        out = E.substitute(expr, {x: E.Const(32, 41)})
        assert E.evaluate(out, {}) == 42

    def test_substitute_width_checked(self):
        x = E.Sym(32, "x")
        with pytest.raises(SymbolicError):
            E.substitute(x, {x: E.Const(8, 1)})

    def test_substitute_through_uninterp(self):
        x = E.Sym(32, "x")
        u = E.Uninterp(16, "h", (x,))
        out = E.substitute(u, {x: E.Const(32, 3)})
        assert E.free_symbols(out) == frozenset()

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_extract_concat_roundtrip(self, value):
        c = E.Const(32, value)
        hi = c.extract(31, 16)
        lo = c.extract(15, 0)
        rebuilt = E.Concat.of(hi, lo)
        assert E.evaluate(rebuilt, {}) == value
