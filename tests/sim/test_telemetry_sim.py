"""Telemetry-enabled simulation: conservation, bit-identity, attribution.

The telemetry plane's central contract: attaching a
:class:`~repro.obs.TelemetrySink` changes *nothing* about a run's results
(both paths stay bit-identical to their unobserved selves) while the
windowed series it collects telescope exactly to the run's aggregate
counters — every packet, read, write, and new flow lands in exactly one
window (the conservation property).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import obs
from repro.core.codegen import Strategy
from repro.nf.nfs import ALL_NFS
from repro.sim.functional import run_functional

WINDOW = 256


@pytest.fixture()
def make_fw(analyses):
    def build(n_cores=8):
        return analyses.maestro.parallelize(
            ALL_NFS["fw"](), n_cores=n_cores, result=analyses["fw"]
        )

    return build


@pytest.fixture()
def make_dbridge(analyses):
    def build(n_cores=8):
        return analyses.maestro.parallelize(
            ALL_NFS["dbridge"](), n_cores=n_cores, result=analyses["dbridge"]
        )

    return build


def assert_conservation(sink, parallel):
    """Window sums must equal the run's lifetime per-core aggregates."""
    for core_id, core in enumerate(parallel.cores):
        assert sink.core_totals("packets")[core_id] == core.packets
        assert sink.core_totals("reads")[core_id] == core.reads
        assert sink.core_totals("writes")[core_id] == core.writes
        assert sink.core_totals("new_flows")[core_id] == core.new_flows


class TestConservation:
    @pytest.mark.parametrize("fastpath", [True, False])
    def test_shared_nothing_fw(self, make_fw, generator, fastpath):
        trace, _ = generator.uniform_trace(
            1500, 120, in_port=0, reply_port=1, reply_fraction=0.4
        )
        parallel = make_fw()
        assert parallel.strategy is Strategy.SHARED_NOTHING
        sink = obs.TelemetrySink(window_packets=WINDOW)
        with obs.telemetry(sink):
            run_functional(parallel, trace, fastpath=fastpath)
        assert sink.total_packets == len(trace)
        assert sink.windows_recorded == math.ceil(len(trace) / WINDOW)
        assert_conservation(sink, parallel)
        # shared-nothing guards nothing, so no lock waits anywhere
        assert sink.total("lock_waits") == 0

    @pytest.mark.parametrize("fastpath", [True, False])
    def test_locks_strategy_dbridge(self, make_dbridge, generator, fastpath):
        trace, _ = generator.uniform_trace(900, 80, in_port=0)
        parallel = make_dbridge()
        assert parallel.strategy is Strategy.LOCKS
        sink = obs.TelemetrySink(window_packets=WINDOW)
        with obs.telemetry(sink):
            run_functional(parallel, trace, fastpath=fastpath)
        assert_conservation(sink, parallel)
        # the learning bridge writes through lock-guarded tables
        assert sink.total("lock_waits") > 0

    def test_lock_waits_identical_across_paths(self, make_dbridge, generator):
        trace, _ = generator.uniform_trace(900, 80, in_port=0)
        waits = []
        for fastpath in (True, False):
            parallel = make_dbridge()
            sink = obs.TelemetrySink(window_packets=WINDOW)
            with obs.telemetry(sink):
                run_functional(parallel, trace, fastpath=fastpath)
            waits.append(sink.core_totals("lock_waits"))
        assert waits[0] == waits[1]

    def test_eviction_does_not_break_conservation(self, make_fw, generator):
        """Ring overflow loses windows, never counts."""
        trace, _ = generator.uniform_trace(1500, 120, in_port=0)
        parallel = make_fw()
        sink = obs.TelemetrySink(window_packets=64, max_windows=4)
        with obs.telemetry(sink):
            run_functional(parallel, trace)
        assert len(sink) == 4
        assert sink.windows_recorded == math.ceil(len(trace) / 64)
        assert_conservation(sink, parallel)


class TestBitIdentity:
    """A sink attached to either path must not change any result."""

    @pytest.mark.parametrize("fastpath", [True, False])
    def test_fw_results_unchanged(self, make_fw, generator, fastpath):
        trace, _ = generator.uniform_trace(
            1200, 100, in_port=0, reply_port=1, reply_fraction=0.4
        )
        par_plain, par_obs = make_fw(), make_fw()
        run_plain = run_functional(par_plain, trace, fastpath=fastpath)
        sink = obs.TelemetrySink(window_packets=WINDOW)
        with obs.telemetry(sink):
            run_obs = run_functional(par_obs, trace, fastpath=fastpath)
        assert list(run_plain.results) == list(run_obs.results)
        assert np.array_equal(run_plain.core_ids, run_obs.core_ids)
        assert run_plain.action_counts() == run_obs.action_counts()

    def test_locks_order_preserved_under_telemetry(
        self, make_dbridge, generator
    ):
        """Chunked execution must not reorder the strict-order path."""
        trace, _ = generator.uniform_trace(700, 60, in_port=0)
        par_plain, par_obs = make_dbridge(), make_dbridge()
        run_plain = run_functional(par_plain, trace)
        with obs.telemetry(obs.TelemetrySink(window_packets=128)):
            run_obs = run_functional(par_obs, trace)
        assert list(run_plain.results) == list(run_obs.results)


class TestSteeringAttribution:
    def test_hits_and_misses_partition_the_trace(self, make_fw, generator):
        trace, _ = generator.uniform_trace(1200, 100, in_port=0)
        parallel = make_fw()
        sink = obs.TelemetrySink(window_packets=WINDOW)
        with obs.telemetry(sink):
            run_functional(parallel, trace)
        hits = sink.total("steer_hits")
        misses = sink.total("steer_misses")
        assert hits + misses == len(trace)
        # cold single-batch steer: every unique flow's packets are misses
        assert misses > 0

    def test_warm_cache_attributes_hits(self, make_fw, generator):
        from repro.sim.functional import FlowSteeringCache

        trace, _ = generator.uniform_trace(1200, 100, in_port=0)
        parallel = make_fw()
        cache = FlowSteeringCache(parallel.rss)
        cache.steer(trace)  # warm every flow
        sink = obs.TelemetrySink(window_packets=WINDOW)
        with obs.telemetry(sink):
            run_functional(parallel, trace, flow_cache=cache)
        assert sink.total("steer_hits") == len(trace)
        assert sink.total("steer_misses") == 0

    def test_reference_path_has_no_steering_metrics(self, make_fw, generator):
        trace, _ = generator.uniform_trace(600, 50, in_port=0)
        parallel = make_fw()
        sink = obs.TelemetrySink(window_packets=WINDOW)
        with obs.telemetry(sink):
            run_functional(parallel, trace, fastpath=False)
        assert sink.total("steer_hits") == 0
        assert sink.total("steer_misses") == 0
