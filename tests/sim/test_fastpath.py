"""Fast-path equivalence: batched steering must match the oracle exactly.

``run_functional``'s fast path (vectorized hashing, flow steering cache,
grouped execution) is only admissible because it is bit-identical to the
seed packet-at-a-time reference path.  These tests pin that contract for
both execution strategies, across flow churn, warm caches, and table
rebalancing, plus the array-backed ``FunctionalRun`` storage itself.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.codegen import Strategy
from repro.nf.api import ActionKind
from repro.nf.nfs import ALL_NFS
from repro.nf.runtime import PacketResult
from repro.obs.collect import MemoryCollector
from repro.sim.functional import FlowSteeringCache, FunctionalRun, run_functional


@pytest.fixture()
def make_fw(analyses):
    def build(n_cores=8):
        return analyses.maestro.parallelize(
            ALL_NFS["fw"](), n_cores=n_cores, result=analyses["fw"]
        )

    return build


@pytest.fixture()
def make_lb(analyses):
    def build(n_cores=8):
        return analyses.maestro.parallelize(
            ALL_NFS["lb"](), n_cores=n_cores, result=analyses["lb"]
        )

    return build


def assert_runs_identical(run_ref, run_fast, par_ref, par_fast):
    assert list(run_ref.results) == list(run_fast.results)
    assert run_ref.results == run_fast.results
    assert np.array_equal(run_ref.core_ids, run_fast.core_ids)
    assert np.array_equal(run_ref.action_codes, run_fast.action_codes)
    assert run_ref.action_counts() == run_fast.action_counts()
    assert run_ref.write_fraction() == run_fast.write_fraction()
    assert np.array_equal(run_ref.core_counts(), run_fast.core_counts())
    for ref_core, fast_core in zip(par_ref.cores, par_fast.cores):
        assert ref_core.packets == fast_core.packets
        assert ref_core.reads == fast_core.reads
        assert ref_core.writes == fast_core.writes
        assert ref_core.new_flows == fast_core.new_flows


class TestEquivalence:
    def test_shared_nothing_matches_reference(self, make_fw, generator):
        trace, _ = generator.uniform_trace(
            1500, 120, in_port=0, reply_port=1, reply_fraction=0.4
        )
        par_ref, par_fast = make_fw(), make_fw()
        assert par_fast.strategy is Strategy.SHARED_NOTHING
        run_ref = run_functional(par_ref, trace, fastpath=False)
        run_fast = run_functional(par_fast, trace)
        assert_runs_identical(run_ref, run_fast, par_ref, par_fast)

    def test_locks_strategy_matches_reference(self, make_lb, generator):
        """The LB's shared backend map forces the strict-order path."""
        trace, _ = generator.uniform_trace(800, 60, in_port=0)
        par_ref, par_fast = make_lb(), make_lb()
        assert par_fast.strategy is Strategy.LOCKS
        run_ref = run_functional(par_ref, trace, fastpath=False)
        run_fast = run_functional(par_fast, trace)
        assert_runs_identical(run_ref, run_fast, par_ref, par_fast)

    def test_churn_trace_every_packet_a_new_flow(self, make_fw, generator):
        """All-unique flows: the steering cache never gets a hit."""
        flows = generator.make_flows(500)
        trace = [(0, flow.packet()) for flow in flows]
        par_ref, par_fast = make_fw(), make_fw()
        cache = FlowSteeringCache(par_fast.rss)
        run_ref = run_functional(par_ref, trace, fastpath=False)
        run_fast = run_functional(par_fast, trace, flow_cache=cache)
        assert_runs_identical(run_ref, run_fast, par_ref, par_fast)
        assert run_ref.write_fraction() > 0.9  # churn: every flow allocates
        assert cache.misses == 500
        assert cache.hits == 0

    def test_empty_trace(self, make_fw):
        run = run_functional(make_fw(), [])
        assert run.n_packets == 0
        assert list(run.results) == []
        assert run.action_counts() == {}
        assert run.write_fraction() == 0.0

    def test_balanced_tables_still_identical(self, make_fw, generator):
        trace, _ = generator.zipf_trace(1200, 300, in_port=0)
        par_ref, par_fast = make_fw(), make_fw()
        run_ref = run_functional(
            par_ref, trace, balance_tables_with=trace, fastpath=False
        )
        run_fast = run_functional(par_fast, trace, balance_tables_with=trace)
        assert_runs_identical(run_ref, run_fast, par_ref, par_fast)


class TestFlowSteeringCache:
    def test_warm_cache_reuse_is_identical(self, make_fw, generator):
        trace, _ = generator.uniform_trace(600, 50, in_port=0)
        par_warm, par_ref = make_fw(), make_fw()
        cache = FlowSteeringCache(par_warm.rss)
        first = run_functional(par_warm, trace, flow_cache=cache)
        misses_after_first = cache.misses
        assert misses_after_first == 50  # one hash per unique flow
        assert len(cache) == 50
        second = run_functional(par_warm, trace, flow_cache=cache)
        # Second pass over the same flows: pure cache hits, no new misses.
        # (A packet counts as a hit only if its flow was cached before the
        # batch started, so the first pass contributes none.)
        assert cache.misses == misses_after_first
        assert cache.hits == len(trace)
        assert np.array_equal(first.core_ids, second.core_ids)
        # A warm cache changes nothing observable: both passes match the
        # oracle run packet-for-packet on the same state evolution.
        ref1 = run_functional(par_ref, trace, fastpath=False)
        ref2 = run_functional(par_ref, trace, fastpath=False)
        assert list(first.results) == list(ref1.results)
        assert list(second.results) == list(ref2.results)

    def test_rebalance_invalidates_cache(self, make_fw, generator):
        trace, _ = generator.zipf_trace(800, 200, in_port=0)
        parallel = make_fw()
        cache = FlowSteeringCache(parallel.rss)
        run_functional(parallel, trace, flow_cache=cache)
        n_unique = len(cache)  # Zipf: far fewer unique flows than packets
        assert 0 < n_unique <= 200
        generation = parallel.rss.steering_generation
        parallel.rss.balance_tables(trace)
        assert parallel.rss.steering_generation > generation
        # The next steer must flush and re-steer against the new tables.
        fresh = run_functional(make_fw(), trace, balance_tables_with=trace)
        stale = run_functional(parallel, trace, flow_cache=cache)
        assert np.array_equal(stale.core_ids, fresh.core_ids)
        assert cache.misses == 2 * n_unique  # every flow re-hashed once

    def test_explicit_invalidate(self, make_fw, generator):
        trace, _ = generator.uniform_trace(100, 10, in_port=0)
        parallel = make_fw()
        cache = FlowSteeringCache(parallel.rss)
        cache.steer(trace)
        assert len(cache) == 10
        cache.invalidate()
        assert len(cache) == 0

    def test_stats_snapshot_tracks_invalidations(self, make_fw, generator):
        """The fuzzer oracle reads cache accounting through stats()."""
        trace, _ = generator.uniform_trace(100, 10, in_port=0)
        parallel = make_fw()
        cache = FlowSteeringCache(parallel.rss)
        cache.steer(trace)
        cache.steer(trace)  # hits only count flows cached before a batch
        stats = cache.stats()
        assert stats["misses"] == 10
        assert stats["hits"] == 100
        assert stats["entries"] == 10
        assert stats["invalidations"] == 0
        assert stats["generation"] == parallel.rss.steering_generation
        cache.invalidate()
        assert cache.stats()["invalidations"] == 1
        assert cache.stats()["entries"] == 0
        # A table rebalance bumps the generation; the next steer
        # self-invalidates and the snapshot shows both effects.
        parallel.rss.balance_tables(trace)
        cache.steer(trace)
        stats = cache.stats()
        assert stats["invalidations"] == 2
        assert stats["generation"] == parallel.rss.steering_generation

    def test_hit_miss_counters_exported(self, make_fw, generator):
        trace, _ = generator.uniform_trace(400, 40, in_port=0)
        parallel = make_fw()
        cache = FlowSteeringCache(parallel.rss)
        mem = MemoryCollector()
        with obs.attached(mem):
            run_functional(parallel, trace, flow_cache=cache)
            run_functional(parallel, trace, flow_cache=cache)
        assert mem.counter_total("fastpath.misses") == 40
        # First run: every packet belongs to a just-missed flow; second
        # run: every packet is a cache hit.
        assert mem.counter_total("fastpath.hits") == 400


class TestFunctionalRunStorage:
    def test_grows_from_zero_capacity(self, make_fw, generator):
        trace, _ = generator.uniform_trace(50, 5, in_port=0)
        parallel = make_fw()
        run = FunctionalRun(parallel=parallel, capacity=0)
        for port, pkt in trace:
            run.add(*parallel.process(port, pkt))
        assert run.n_packets == 50
        assert run.action_counts()[ActionKind.FORWARD] == 50
        assert len(run.core_ids) == 50

    def test_results_view_list_api(self, make_fw, generator):
        trace, _ = generator.uniform_trace(20, 4, in_port=0)
        parallel = make_fw()
        run = run_functional(parallel, trace)
        view = run.results
        assert len(view) == 20
        first = view[0]
        assert isinstance(first, tuple) and isinstance(first[1], PacketResult)
        assert view[-1] == view[19]
        assert view[5:8] == list(view)[5:8]
        with pytest.raises(IndexError):
            view[20]
        with pytest.raises(IndexError):
            view[-21]
        assert view == list(view)
        assert not (view == list(view)[:-1])

    def test_results_view_append(self, make_fw, generator):
        trace, _ = generator.uniform_trace(10, 2, in_port=0)
        parallel = make_fw()
        run = run_functional(parallel, trace)
        extra = parallel.process(*trace[0])
        run.results.append(extra)
        assert run.n_packets == 11
        assert run.results[-1] == extra

    def test_array_views_read_only(self, make_fw, generator):
        trace, _ = generator.uniform_trace(10, 2, in_port=0)
        run = run_functional(make_fw(), trace)
        with pytest.raises(ValueError):
            run.core_ids[0] = 7
        with pytest.raises(ValueError):
            run.action_codes[0] = 3


class TestSanitizeMode:
    """``sanitize=True`` must bypass the memo/grouping, not change results."""

    def test_sanitize_matches_warm_cache_run(self, make_fw, generator):
        trace, _ = generator.uniform_trace(
            900, 90, in_port=0, reply_port=1, reply_fraction=0.3
        )
        par_fast, par_san = make_fw(), make_fw()
        cache = FlowSteeringCache(par_fast.rss)
        cache.steer(trace)  # warm every flow without touching state
        run_fast = run_functional(par_fast, trace, flow_cache=cache)
        hits_before = cache.hits
        run_san = run_functional(
            par_san, trace, sanitize=True, flow_cache=cache
        )
        # Bypass is real: the warm cache served nothing to the sanitize run.
        assert cache.hits == hits_before
        assert_runs_identical(run_fast, run_san, par_fast, par_san)

    def test_sanitize_overrides_fastpath_flag(self, make_fw, generator):
        """sanitize=True wins even with fastpath explicitly requested."""
        trace, _ = generator.uniform_trace(300, 40, in_port=0)
        par_ref, par_san = make_fw(), make_fw()
        run_ref = run_functional(par_ref, trace, fastpath=False)
        run_san = run_functional(par_san, trace, fastpath=True, sanitize=True)
        assert_runs_identical(run_ref, run_san, par_ref, par_san)

    def test_warm_cache_and_sanitize_agree_on_race_verdicts(self, analyses, generator):
        """Satellite regression: sanitizing after a warm-cache run reaches
        the same verdict as sanitizing a fresh NF — the memo changes
        performance, never what the checkers see."""
        from repro.analysis.race import sanitize_parallel

        trace, _ = generator.uniform_trace(
            400, 60, in_port=0, reply_port=1, reply_fraction=0.3
        )
        warmed = analyses.maestro.parallelize(
            ALL_NFS["fw"](), n_cores=8, result=analyses["fw"]
        )
        cache = FlowSteeringCache(warmed.rss)
        run_functional(warmed, trace, flow_cache=cache)  # warm-cache run
        warm_report = sanitize_parallel(
            warmed, trace, tree=analyses["fw"].tree
        )
        fresh = analyses.maestro.parallelize(
            ALL_NFS["fw"](), n_cores=8, result=analyses["fw"]
        )
        fresh_report = sanitize_parallel(fresh, trace, tree=analyses["fw"].tree)
        assert warm_report.clean and fresh_report.clean
        assert [d.code for d in warm_report.diagnostics] == [
            d.code for d in fresh_report.diagnostics
        ]
        assert warm_report.n_packets == fresh_report.n_packets
