"""Latency model: §6.4's 11-12us, strategy-independent."""

import numpy as np
import pytest

from repro.core import Strategy
from repro.hw.cpu import profile_for
from repro.nf.nfs import ALL_NFS
from repro.sim.latency import latency_probe


class TestLatency:
    @pytest.mark.parametrize("name", list(ALL_NFS))
    def test_in_paper_range(self, name):
        profile = profile_for(ALL_NFS[name]())
        mean, std = latency_probe(profile, Strategy.SHARED_NOTHING
                                  if name not in ("dbridge", "lb")
                                  else Strategy.LOCKS, 16)
        assert 9.0 < mean < 14.0
        assert std < 3.0

    def test_cl_slowest(self):
        cl_mean, _ = latency_probe(profile_for(ALL_NFS["cl"]()),
                                   Strategy.SHARED_NOTHING, 16)
        nop_mean, _ = latency_probe(profile_for(ALL_NFS["nop"]()),
                                    Strategy.SHARED_NOTHING, 16)
        assert cl_mean > nop_mean

    def test_strategy_does_not_deeply_affect_latency(self):
        """'We detected no noticeable differences ... regardless of the
        adopted parallelization strategy.'"""
        profile = profile_for(ALL_NFS["fw"]())
        rng = np.random.default_rng(1)
        means = [
            latency_probe(profile, strategy, 16, rng=rng)[0]
            for strategy in (Strategy.SHARED_NOTHING, Strategy.LOCKS, Strategy.TM)
        ]
        assert max(means) - min(means) < 1.5

    def test_deterministic_with_seeded_rng(self):
        profile = profile_for(ALL_NFS["fw"]())
        a = latency_probe(profile, Strategy.LOCKS, 8, rng=np.random.default_rng(3))
        b = latency_probe(profile, Strategy.LOCKS, 8, rng=np.random.default_rng(3))
        assert a == b
