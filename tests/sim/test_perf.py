"""Performance model: the qualitative laws the paper's figures rest on."""

import numpy as np
import pytest

from repro.core import Strategy
from repro.hw.cpu import profile_for
from repro.hw.pcie import Bottleneck
from repro.nf.nfs import ALL_NFS
from repro.sim.perf import PerformanceModel, Workload

MODEL = PerformanceModel()
WL = Workload(pkt_size=64, n_flows=40_000)


def mpps(name, strategy, cores, workload=WL, **kw):
    profile = profile_for(ALL_NFS[name]())
    return MODEL.throughput(profile, strategy, cores, workload, **kw).mpps


class TestSharedNothingScaling:
    @pytest.mark.parametrize("name", ["fw", "nat", "cl", "psd", "policer"])
    def test_monotone_in_cores(self, name):
        rates = [mpps(name, Strategy.SHARED_NOTHING, n) for n in (1, 2, 4, 8, 16)]
        assert all(a <= b + 1e-6 for a, b in zip(rates, rates[1:]))

    def test_nop_hits_pcie_ceiling(self):
        profile = profile_for(ALL_NFS["nop"]())
        result = MODEL.throughput(profile, Strategy.SHARED_NOTHING, 16, WL)
        assert result.bottleneck is Bottleneck.PCIE
        assert result.mpps == pytest.approx(91.5, rel=0.05)

    def test_psd_compound_speedup(self):
        """§6.4: PSD gains far more than 8x at 16 cores (paper: 19x) from
        parallelism plus per-core cache locality."""
        one = mpps("psd", Strategy.SHARED_NOTHING, 1)
        sixteen = mpps("psd", Strategy.SHARED_NOTHING, 16)
        assert sixteen / one > 12

    def test_small_flow_count_nullifies_cache_effect(self):
        """§6.4: with only 256 flows everything fits in L1 and the cache
        boost disappears."""
        tiny = Workload(pkt_size=64, n_flows=256)
        one = mpps("psd", Strategy.SHARED_NOTHING, 1, tiny)
        sixteen = mpps("psd", Strategy.SHARED_NOTHING, 16, tiny)
        assert sixteen / one < 17  # no super-linearity left


class TestStrategyOrdering:
    @pytest.mark.parametrize("name", ["fw", "nat", "cl", "psd"])
    @pytest.mark.parametrize("cores", [4, 16])
    def test_shared_nothing_beats_locks_beats_tm(self, name, cores):
        sn = mpps(name, Strategy.SHARED_NOTHING, cores)
        locks = mpps(name, Strategy.LOCKS, cores)
        tm = mpps(name, Strategy.TM, cores)
        assert sn >= locks >= tm

    def test_policer_locks_catastrophic(self):
        """§6.4: 'every packet requires an exclusive write lock, and
        performance suffers catastrophically'."""
        locks_16 = mpps("policer", Strategy.LOCKS, 16)
        locks_4 = mpps("policer", Strategy.LOCKS, 4)
        sn_16 = mpps("policer", Strategy.SHARED_NOTHING, 16)
        assert locks_16 < locks_4  # adding cores makes it WORSE
        assert sn_16 / locks_16 > 10

    def test_tm_collapses_on_complex_nfs(self):
        """§6.4: TM scales for simple NFs, 'performs abysmally' for
        complex ones.  Compared on raw CPU capacity so the PCIe ceiling
        does not mask the scaling difference."""

        def cpu_pps(name, cores):
            profile = profile_for(ALL_NFS[name]())
            return MODEL.throughput(profile, Strategy.TM, cores, WL).cpu_pps

        simple_ratio = cpu_pps("sbridge", 16) / cpu_pps("sbridge", 4)
        complex_ratio = cpu_pps("cl", 16) / cpu_pps("cl", 4)
        assert simple_ratio > 2.5
        assert complex_ratio < 0.75 * simple_ratio


class TestChurn:
    def test_shared_nothing_flat_under_churn(self):
        calm = mpps("fw", Strategy.SHARED_NOTHING, 16)
        # ~56M fpm at equilibrium: well beyond the lock collapse point.
        stormy = mpps(
            "fw", Strategy.SHARED_NOTHING, 16,
            Workload(pkt_size=64, n_flows=40_000, relative_churn_fpg=20_000),
        )
        assert stormy > 0.9 * calm

    def test_locks_collapse_under_churn(self):
        calm = mpps("fw", Strategy.LOCKS, 16)
        stormy = mpps(
            "fw", Strategy.LOCKS, 16,
            Workload(pkt_size=64, n_flows=40_000, relative_churn_fpg=20_000),
        )
        assert stormy < 0.25 * calm

    def test_tm_worse_than_locks_under_churn(self):
        workload = Workload(
            pkt_size=64, n_flows=40_000, relative_churn_fpg=2_000
        )
        assert mpps("fw", Strategy.TM, 16, workload) <= mpps(
            "fw", Strategy.LOCKS, 16, workload
        )


class TestSkewInput:
    def test_skewed_shares_lower_throughput(self):
        skewed = np.array([0.4] + [0.6 / 7] * 7)
        uniform = Workload(pkt_size=64, n_flows=40_000)
        with_skew = Workload(pkt_size=64, n_flows=40_000, core_shares=skewed)
        assert mpps("fw", Strategy.SHARED_NOTHING, 8, with_skew) < mpps(
            "fw", Strategy.SHARED_NOTHING, 8, uniform
        )

    def test_share_length_validated(self):
        workload = Workload(core_shares=np.ones(4) / 4)
        with pytest.raises(ValueError):
            workload.shares(8)

    def test_zipf_single_core_faster(self):
        """Figure 5: one core runs faster under Zipf (cache hit rate)."""
        from repro.traffic import paper_zipf_weights

        uniform = Workload(pkt_size=64, n_flows=40_000)
        zipf = Workload(
            pkt_size=64, n_flows=40_000, zipf_weights=paper_zipf_weights(40_000)
        )
        assert mpps("fw", Strategy.SHARED_NOTHING, 1, zipf) > mpps(
            "fw", Strategy.SHARED_NOTHING, 1, uniform
        )


class TestVppComparison:
    def test_figure11_ordering(self):
        profile = profile_for(ALL_NFS["nat"]())
        for cores in (4, 8, 16):
            # Raw CPU capacity: the PCIe ceiling flattens the top end.
            sn = MODEL.throughput(
                profile, Strategy.SHARED_NOTHING, cores, WL
            ).cpu_pps
            locks = MODEL.throughput(profile, Strategy.LOCKS, cores, WL).cpu_pps
            vpp = MODEL.throughput(
                profile, Strategy.LOCKS, cores, WL, vpp_mode=True
            ).cpu_pps
            assert sn > vpp
            assert locks > vpp  # "Maestro slightly outperforms VPP"

    def test_sn_nat_reaches_pcie_before_16(self):
        """Figure 11: shared-nothing NAT hits the PCIe bottleneck with
        ~10 cores."""
        profile = profile_for(ALL_NFS["nat"]())
        result = MODEL.throughput(profile, Strategy.SHARED_NOTHING, 12, WL)
        assert result.bottleneck is Bottleneck.PCIE

    def test_vpp_scales(self):
        assert mpps("nat", Strategy.LOCKS, 16, vpp_mode=True) > 3 * mpps(
            "nat", Strategy.LOCKS, 1, vpp_mode=True
        )


class TestEvaluateParallel:
    def test_measured_shares_flow_into_model(self, analyses, generator):
        parallel = analyses.maestro.parallelize(
            ALL_NFS["fw"](), n_cores=8, result=analyses["fw"]
        )
        trace, _ = generator.zipf_trace(2000, 500, in_port=0)
        skewed = MODEL.evaluate_parallel(parallel, WL, trace=trace)
        even = MODEL.evaluate_parallel(parallel, WL)
        assert skewed.pps <= even.pps
