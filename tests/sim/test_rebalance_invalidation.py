"""Satellite: *dynamic* ``rebalance()`` must invalidate every consumer.

The static ``balance_tables`` path is covered in ``test_compiled.py``;
this suite pins the incremental RSS++ rebalancer (bounded entry moves on
a live table): one call must bump ``steering_generation`` and thereby
flush (a) the flow-steering cache and (b) the compiled dispatcher's
classification memo — and results must stay bit-identical to a
sequential oracle that saw the same re-steering.
"""

import numpy as np
import pytest

from repro.nf.nfs import ALL_NFS
from repro.sim.functional import FlowSteeringCache, run_functional


@pytest.fixture()
def make_pair(analyses):
    def build(name, n_cores=4):
        def one():
            return analyses.maestro.parallelize(
                ALL_NFS[name](), n_cores=n_cores, result=analyses[name]
            )

        return one(), one()

    return build


def skewed_loads(table):
    """Per-entry loads that pile onto one queue, forcing entry moves."""
    loads = np.ones(table.size, dtype=np.float64)
    hot_queue = int(table.entries[0])
    hot_slots = np.flatnonzero(table.entries == hot_queue)[:8]
    loads[hot_slots] = 1000.0
    return loads


def rebalance_all_ports(parallel):
    """Apply a deterministic dynamic rebalance to every port table."""
    moved = 0
    for config in parallel.rss.ports.values():
        moved += config.table.rebalance(skewed_loads(config.table))
    return moved


class TestGenerationBump:
    def test_dynamic_rebalance_bumps_generation(self, make_pair):
        _, parallel = make_pair("fw")
        gen = parallel.rss.steering_generation
        moved = rebalance_all_ports(parallel)
        assert moved > 0
        assert parallel.rss.steering_generation > gen

    def test_zero_move_rebalance_keeps_generation(self, make_pair):
        _, parallel = make_pair("fw")
        table = parallel.rss.port_config(0).table
        gen = parallel.rss.steering_generation
        # Perfectly uniform loads on a round-robin table: nothing to move.
        moved = table.rebalance(np.ones(table.size, dtype=np.float64))
        assert moved == 0
        assert parallel.rss.steering_generation == gen


class TestFlowCacheInvalidation:
    def test_rebalance_flushes_flow_steering_cache(self, make_pair, generator):
        _, parallel = make_pair("fw")
        trace, _ = generator.uniform_trace(400, 48, in_port=0)
        cache = FlowSteeringCache(parallel.rss)
        cache.steer(trace)
        assert len(cache) > 0
        inv_before = cache.stats()["invalidations"]
        assert rebalance_all_ports(parallel) > 0
        # The cache notices lazily, on its next use.
        cores_after = cache.steer(trace)
        assert cache.stats()["invalidations"] == inv_before + 1
        assert cache.stats()["generation"] == parallel.rss.steering_generation
        # And the refreshed decisions match the table's truth.
        assert np.array_equal(cores_after, parallel.rss.steer_trace(trace))


class TestCompiledMemoInvalidation:
    def test_rebalance_flushes_kernel_memo_and_stays_identical(
        self, make_pair, generator
    ):
        trace, _ = generator.uniform_trace(
            1000, 64, in_port=0, reply_port=1, reply_fraction=0.3
        )
        par_ref, par_comp = make_pair("fw")
        cache = FlowSteeringCache(par_comp.rss)

        run_functional(par_ref, trace, fastpath=False)
        run_functional(par_comp, trace, flow_cache=cache)
        disp = par_comp._compiled_dispatcher
        assert disp is not None
        inv_before = disp.memo_invalidations

        # Same dynamic rebalance on both sides (deterministic given the
        # same loads), so oracle and compiled steer identically after.
        assert rebalance_all_ports(par_ref) > 0
        assert rebalance_all_ports(par_comp) > 0
        assert (
            par_ref.rss.steering_generation
            == par_comp.rss.steering_generation
        )

        run_ref = run_functional(par_ref, trace, fastpath=False)
        run_comp = run_functional(par_comp, trace, flow_cache=cache)
        assert disp.memo_invalidations > inv_before
        assert list(run_ref.results) == list(run_comp.results)
        assert np.array_equal(run_ref.core_ids, run_comp.core_ids)
