"""Functional multicore simulation: steering, skew, balancing."""

import numpy as np
import pytest

from repro.nf.nfs import ALL_NFS
from repro.sim.functional import run_functional
from repro.traffic import TrafficGenerator, paper_zipf_weights


@pytest.fixture()
def fw_parallel(analyses):
    return analyses.maestro.parallelize(
        ALL_NFS["fw"](), n_cores=8, result=analyses["fw"]
    )


class TestSteering:
    def test_flow_affinity(self, analyses, generator):
        """Every packet of a flow (and its replies) on one core."""
        parallel = analyses.maestro.parallelize(
            ALL_NFS["fw"](), n_cores=8, result=analyses["fw"]
        )
        trace, flows = generator.uniform_trace(
            600, 40, in_port=0, reply_port=1, reply_fraction=0.5
        )
        run = run_functional(parallel, trace)
        flow_core: dict = {}
        for (port, pkt), (core, _) in zip(trace, run.results):
            key = tuple(sorted([pkt.src_ip, pkt.dst_ip])) + tuple(
                sorted([pkt.src_port, pkt.dst_port])
            )
            assert flow_core.setdefault(key, core) == core

    def test_shares_sum_to_one(self, fw_parallel, generator):
        trace, _ = generator.uniform_trace(500, 100, in_port=0)
        run = run_functional(fw_parallel, trace)
        assert run.core_shares().sum() == pytest.approx(1.0)
        assert run.n_packets == 500

    def test_uniform_traffic_spreads(self, fw_parallel, generator):
        trace, _ = generator.uniform_trace(4000, 2000, in_port=0)
        run = run_functional(fw_parallel, trace)
        assert run.imbalance() < 1.6


class TestSkewAndBalancing:
    def test_zipf_skews_more_than_uniform(self, analyses):
        generator = TrafficGenerator(seed=123)
        uniform_trace, _ = generator.uniform_trace(4000, 1000, in_port=0)
        zipf_trace, _ = TrafficGenerator(seed=123).zipf_trace(
            4000, 1000, in_port=0
        )
        make = lambda: analyses.maestro.parallelize(
            ALL_NFS["fw"](), n_cores=8, result=analyses["fw"]
        )
        uniform_imbalance = run_functional(make(), uniform_trace).imbalance()
        zipf_imbalance = run_functional(make(), zipf_trace).imbalance()
        assert zipf_imbalance > uniform_imbalance

    def test_balancing_reduces_zipf_skew(self, analyses):
        generator = TrafficGenerator(seed=321)
        trace, _ = generator.zipf_trace(4000, 1000, in_port=0)
        make = lambda: analyses.maestro.parallelize(
            ALL_NFS["fw"](), n_cores=8, result=analyses["fw"]
        )
        unbalanced = run_functional(make(), trace).imbalance()
        balanced = run_functional(
            make(), trace, balance_tables_with=trace
        ).imbalance()
        assert balanced <= unbalanced


class TestMeasurements:
    def test_write_fraction_warm_vs_cold(self, analyses, generator):
        parallel = analyses.maestro.parallelize(
            ALL_NFS["fw"](), n_cores=4, result=analyses["fw"]
        )
        trace, _ = generator.uniform_trace(300, 30, in_port=0)
        cold = run_functional(parallel, trace)
        assert cold.write_fraction() > 0.05  # flow creation
        warm = run_functional(parallel, trace)
        assert warm.write_fraction() == 0.0  # steady state, rejuvenation only

    def test_action_counts(self, analyses, generator):
        from repro.nf.api import ActionKind

        parallel = analyses.maestro.parallelize(
            ALL_NFS["fw"](), n_cores=4, result=analyses["fw"]
        )
        trace, _ = generator.uniform_trace(100, 10, in_port=0)
        run = run_functional(parallel, trace)
        assert run.action_counts()[ActionKind.FORWARD] == 100
