"""Compiled dataplane properties: kernels == interpreter, per path.

The packet-at-a-time interpreter is the oracle for the compiled batch
kernels (:mod:`repro.sim.compiled`): every compiled run must be
bit-identical to the reference — results, core ids, per-core lifetime
counters — across the corpus NFs, both execution strategies,
adversarial workloads (collide / boundary / exhaust), warm and cold
caches, and steering-table churn.  ``sanitize=True`` must bypass the
kernels entirely, exactly as it bypasses the steering cache.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.codegen import Strategy
from repro.core.pipeline import Maestro
from repro.fuzz.workloads import WorkloadSpec, materialize_workload
from repro.nf.nfs import ALL_NFS
from repro.nf.nfs.firewall import Firewall
from repro.obs.collect import MemoryCollector
from repro.sim.functional import FlowSteeringCache, run_functional

CORPUS = sorted(ALL_NFS)


@pytest.fixture()
def make_pair(analyses):
    """Two independently generated ParallelNFs off one shared analysis,
    so both sides steer with identical RSS keys."""

    def build(name, n_cores=4, strategy=None):
        def one():
            return analyses.maestro.parallelize(
                ALL_NFS[name](),
                n_cores=n_cores,
                result=analyses[name],
                strategy=strategy,
            )

        return one(), one()

    return build


def assert_runs_identical(run_ref, run_comp, par_ref, par_comp):
    assert list(run_ref.results) == list(run_comp.results)
    assert np.array_equal(run_ref.core_ids, run_comp.core_ids)
    assert np.array_equal(run_ref.action_codes, run_comp.action_codes)
    assert run_ref.action_counts() == run_comp.action_counts()
    for ref_core, comp_core in zip(par_ref.cores, par_comp.cores):
        assert ref_core.packets == comp_core.packets
        assert ref_core.reads == comp_core.reads
        assert ref_core.writes == comp_core.writes
        assert ref_core.new_flows == comp_core.new_flows


class TestPerPathIdentity:
    """Bit-identity holds for every compiled path individually, not just
    in aggregate: group packets by the kernel path that executed them and
    compare each group against the oracle."""

    @pytest.mark.parametrize("name", CORPUS)
    def test_corpus_nf_per_path(self, make_pair, generator, name):
        trace, _ = generator.uniform_trace(
            1200, 90, in_port=0, reply_port=1, reply_fraction=0.35
        )
        par_ref, par_comp = make_pair(name)
        run_ref = run_functional(par_ref, trace, fastpath=False)
        run_comp = run_functional(par_comp, trace)
        assert_runs_identical(run_ref, run_comp, par_ref, par_comp)

        pids = run_comp.compiled_path_ids
        assert pids.shape == (len(trace),)
        assert int((pids >= 0).sum()) == run_comp.compiled["kernel_packets"]
        ref_results = list(run_ref.results)
        comp_results = list(run_comp.results)
        for pid in np.unique(pids):
            idx = np.flatnonzero(pids == pid)
            assert [comp_results[i] for i in idx] == [
                ref_results[i] for i in idx
            ], f"{name}: divergence within path {pid}"

    def test_locks_strategy_per_path(self, make_pair, generator):
        trace, _ = generator.uniform_trace(
            800, 70, in_port=0, reply_port=1, reply_fraction=0.3
        )
        par_ref, par_comp = make_pair("fw", strategy=Strategy.LOCKS)
        assert par_comp.strategy is Strategy.LOCKS
        run_ref = run_functional(par_ref, trace, fastpath=False)
        run_comp = run_functional(par_comp, trace)
        assert_runs_identical(run_ref, run_comp, par_ref, par_comp)
        pids = run_comp.compiled_path_ids
        assert int((pids >= 0).sum()) == run_comp.compiled["kernel_packets"]

    @pytest.mark.parametrize("name", CORPUS)
    def test_no_corpus_nf_is_all_fallback(self, make_pair, generator, name):
        """Every corpus NF must get at least one packet through a kernel;
        100% interpreter fallback means the compiler regressed."""
        trace, _ = generator.uniform_trace(
            600, 40, in_port=0, reply_port=1, reply_fraction=0.3
        )
        _, par_comp = make_pair(name)
        run = run_functional(par_comp, trace)
        assert run.compiled["coverage"] > 0.0, (
            f"{name}: compiled dataplane fell back for every packet"
        )


class TestAdversarialWorkloads:
    def test_collide_workload(self, make_pair):
        par_ref, par_comp = make_pair("fw")
        spec = WorkloadSpec("collide", 17, n_packets=900, n_flows=64)
        trace = materialize_workload(spec, rss=par_comp.rss)
        # Cold pass: every flow's first packet allocates, so the hazard
        # fixpoint demotes the whole (single-chunk) trace — identity must
        # hold even at 100% fallback.
        run_ref = run_functional(par_ref, trace, fastpath=False)
        run_comp = run_functional(par_comp, trace)
        assert_runs_identical(run_ref, run_comp, par_ref, par_comp)
        # Warm pass: all flows exist, the rejuvenate path kernels, and
        # every colliding lane lands on one core in large groups.
        run_ref2 = run_functional(par_ref, trace, fastpath=False)
        run_comp2 = run_functional(par_comp, trace)
        assert_runs_identical(run_ref2, run_comp2, par_ref, par_comp)
        assert run_comp2.compiled["kernel_packets"] > 0

    def test_boundary_workload(self, make_pair):
        par_ref, par_comp = make_pair("policer")
        spec = WorkloadSpec("boundary", 23, n_packets=700, n_flows=48)
        trace = materialize_workload(spec, guard_values=(0, 1, 65535))
        run_ref = run_functional(par_ref, trace, fastpath=False)
        run_comp = run_functional(par_comp, trace)
        assert_runs_identical(run_ref, run_comp, par_ref, par_comp)

    def test_exhaust_workload_tiny_capacity(self):
        """Capacity exhaustion: allocation failures are interpreter-only
        paths, so the run mixes kernels and fallbacks heavily — the seam
        between the two is where scatter bugs hide."""

        def build():
            return Maestro(seed=7).parallelize(
                Firewall(capacity=32), n_cores=4
            )

        par_ref, par_comp = build(), build()
        spec = WorkloadSpec("exhaust", 29, n_packets=800, n_flows=32)
        trace = materialize_workload(spec, min_capacity=32)
        run_ref = run_functional(par_ref, trace, fastpath=False)
        run_comp = run_functional(par_comp, trace)
        assert_runs_identical(run_ref, run_comp, par_ref, par_comp)
        assert run_comp.compiled["fallback_packets"] > 0


class TestCacheTemperature:
    def test_warm_cache_runs_identical(self, make_pair, generator):
        """Three rounds over one trace with a shared steering cache: the
        uid memo and the whole-trace steering memo are both hot from
        round two on, and every round must still match a fresh oracle
        round on the same state evolution."""
        trace, _ = generator.uniform_trace(
            700, 60, in_port=0, reply_port=1, reply_fraction=0.3
        )
        par_ref, par_comp = make_pair("fw")
        cache = FlowSteeringCache(par_comp.rss)
        for round_no in range(3):
            run_ref = run_functional(par_ref, trace, fastpath=False)
            run_comp = run_functional(par_comp, trace, flow_cache=cache)
            assert_runs_identical(run_ref, run_comp, par_ref, par_comp)
        # The memo did real work by round three.
        disp = par_comp._compiled_dispatcher
        assert disp.memo_hits > 0

    def test_cold_vs_warm_same_results(self, make_pair, generator):
        trace, _ = generator.uniform_trace(500, 40, in_port=0)
        par_cold, par_warm = make_pair("nat")
        cache = FlowSteeringCache(par_warm.rss)
        cache.steer(trace)  # pre-warm steering without touching state
        run_cold = run_functional(par_cold, trace)
        run_warm = run_functional(par_warm, trace, flow_cache=cache)
        assert_runs_identical(run_cold, run_warm, par_cold, par_warm)


class TestSteeringGenerationInvalidation:
    """Satellite: a steering_generation bump must invalidate memoized
    path classifications, not just the flow->core cache."""

    def test_rebalance_flushes_kernel_memo_and_stays_identical(
        self, make_pair
    ):
        spec = WorkloadSpec("churn", 31, n_packets=1200, n_flows=80)
        trace = materialize_workload(spec)
        par_ref, par_comp = make_pair("fw")
        cache = FlowSteeringCache(par_comp.rss)

        run_functional(par_ref, trace, fastpath=False)
        run_functional(par_comp, trace, flow_cache=cache)
        disp = par_comp._compiled_dispatcher
        assert disp is not None
        inv_before = disp.memo_invalidations

        # Re-key mid-run: rebalance both sides' tables from the same
        # sample (balance_tables is deterministic given the sample), so
        # the oracle sees the same steering the compiled side does.
        par_ref.rss.balance_tables(trace)
        par_comp.rss.balance_tables(trace)
        assert par_ref.rss.steering_generation == (
            par_comp.rss.steering_generation
        )

        run_ref = run_functional(par_ref, trace, fastpath=False)
        run_comp = run_functional(par_comp, trace, flow_cache=cache)
        # The generation bump reached the dispatcher: memoized path
        # classifications were dropped, not replayed.
        assert disp.memo_invalidations > inv_before
        assert_runs_identical(run_ref, run_comp, par_ref, par_comp)


class TestSanitizeBypass:
    def test_sanitize_bypasses_kernels(self, make_pair, generator):
        """sanitize=True must not build, consult, or warm the compiled
        dispatcher — the checkers need the raw packet-at-a-time path."""
        trace, _ = generator.uniform_trace(400, 30, in_port=0)
        par_ref, par_san = make_pair("fw")
        run_ref = run_functional(par_ref, trace, fastpath=False)
        run_san = run_functional(
            par_san, trace, fastpath=True, kernels=True, sanitize=True
        )
        assert_runs_identical(run_ref, run_san, par_ref, par_san)
        # No kernel accounting on a sanitize run, and no dispatcher was
        # ever instantiated for it.
        assert not hasattr(run_san, "compiled")
        assert getattr(par_san, "_compiled_dispatcher", None) is None

    def test_sanitize_after_warm_kernels_leaves_counters_alone(
        self, make_pair, generator
    ):
        trace, _ = generator.uniform_trace(300, 25, in_port=0)
        _, par = make_pair("fw")
        run_functional(par, trace)  # warm: dispatcher now exists
        disp = par._compiled_dispatcher
        kernel_before = disp.kernel_packets
        fallback_before = disp.fallback_packets
        run_san = run_functional(par, trace, sanitize=True)
        assert not hasattr(run_san, "compiled")
        assert disp.kernel_packets == kernel_before
        assert disp.fallback_packets == fallback_before

    def test_kernels_false_uses_plain_fastpath(self, make_pair, generator):
        trace, _ = generator.uniform_trace(300, 25, in_port=0)
        par_ref, par_fast = make_pair("fw")
        run_ref = run_functional(par_ref, trace, fastpath=False)
        run_fast = run_functional(par_fast, trace, kernels=False)
        assert_runs_identical(run_ref, run_fast, par_ref, par_fast)
        assert not hasattr(run_fast, "compiled")


class TestObservability:
    def test_compiled_counters_exported(self, make_pair, generator):
        """A compiled run exports compiled.paths / hits / fallbacks to
        any attached collector; hits + fallbacks account for every
        packet in the trace."""
        trace, _ = generator.uniform_trace(400, 30, in_port=0)
        _, par = make_pair("fw")
        mem = MemoryCollector()
        with obs.attached(mem):
            run = run_functional(par, trace)
        assert hasattr(run, "compiled")
        assert mem.counter_total("compiled.paths") == run.compiled[
            "supported_paths"
        ]
        assert mem.counter_total("compiled.hits") == run.compiled[
            "kernel_packets"
        ]
        assert (
            mem.counter_total("compiled.hits")
            + mem.counter_total("compiled.fallbacks")
            == len(trace)
        )
