"""Semantic equivalence: the property Maestro exists to preserve (§1).

For every shared-nothing NF, a bidirectional trace must behave identically
through the generated parallel implementation and the sequential
reference.  This exercises the *actual* generated RSS keys end-to-end:
a wrong key would steer a reply to a core without the flow's state and
show up as a divergence here.
"""

import pytest

from repro.core import Strategy
from repro.nf.nfs import ALL_NFS
from repro.sim.equivalence import check_equivalence
from repro.traffic import TrafficGenerator


def bidirectional_trace(generator, n_flows=60, n_packets=400):
    trace, _ = generator.uniform_trace(
        n_packets, n_flows, in_port=0, reply_port=1, reply_fraction=0.4
    )
    return trace


def one_way_trace(generator, port, n_flows=60, n_packets=300):
    trace, _ = generator.uniform_trace(n_packets, n_flows, in_port=port)
    return trace


class TestSharedNothingEquivalence:
    @pytest.mark.parametrize("cores", [1, 3, 8])
    def test_firewall(self, analyses, generator, cores):
        parallel = analyses.maestro.parallelize(
            ALL_NFS["fw"](), n_cores=cores, result=analyses["fw"]
        )
        report = check_equivalence(
            ALL_NFS["fw"], parallel, bidirectional_trace(generator)
        )
        assert report.equivalent, report.describe()
        assert report.capacity_divergences == 0

    def test_connection_limiter(self, analyses, generator):
        parallel = analyses.maestro.parallelize(
            ALL_NFS["cl"](), n_cores=4, result=analyses["cl"]
        )
        report = check_equivalence(
            ALL_NFS["cl"], parallel, bidirectional_trace(generator)
        )
        assert report.equivalent, report.describe()

    def test_psd(self, analyses, generator):
        parallel = analyses.maestro.parallelize(
            ALL_NFS["psd"](), n_cores=4, result=analyses["psd"]
        )
        report = check_equivalence(
            ALL_NFS["psd"], parallel, one_way_trace(generator, port=0)
        )
        assert report.equivalent, report.describe()

    def test_policer(self, analyses, generator):
        parallel = analyses.maestro.parallelize(
            ALL_NFS["policer"](), n_cores=4, result=analyses["policer"]
        )
        report = check_equivalence(
            ALL_NFS["policer"], parallel, one_way_trace(generator, port=1)
        )
        assert report.equivalent, report.describe()

    def test_nat_modulo_allocated_ports(self, analyses, generator):
        """§6.1: external-port uniqueness holds per core, not across
        cores; the *translated values* may differ, routing must not."""
        parallel = analyses.maestro.parallelize(
            ALL_NFS["nat"](), n_cores=4, result=analyses["nat"]
        )
        trace = one_way_trace(generator, port=0)
        report = check_equivalence(
            ALL_NFS["nat"], parallel, trace, ignore_mods=("src_port",)
        )
        assert report.equivalent, report.describe()

    def test_nat_full_session_roundtrip(self, analyses):
        """Replies addressed to the *parallel* NAT's allocated ports must
        translate back correctly — checked directly, not via the
        sequential reference (ports legitimately differ)."""
        from repro.nf.packet import Packet
        from repro.nf.api import ActionKind

        nat = ALL_NFS["nat"]()
        parallel = analyses.maestro.parallelize(
            nat, n_cores=4, result=analyses["nat"]
        )
        for i in range(50):
            client = Packet(
                src_ip=0x0A000000 + i, dst_ip=0x50000000 + i,
                src_port=2000 + i, dst_port=80,
            )
            _, out = parallel.process(0, client)
            assert out.kind is ActionKind.FORWARD
            reply = Packet(
                src_ip=client.dst_ip,
                dst_ip=out.mods["src_ip"],
                src_port=80,
                dst_port=out.mods["src_port"],
            )
            _, back = parallel.process(1, reply)
            assert back.kind is ActionKind.FORWARD, f"flow {i} broke"
            assert back.mods["dst_ip"] == client.src_ip
            assert back.mods["dst_port"] == client.src_port


class TestLockBasedEquivalence:
    def test_lb_under_locks(self, analyses, generator):
        parallel = analyses.maestro.parallelize(
            ALL_NFS["lb"](), n_cores=4, result=analyses["lb"]
        )
        assert parallel.strategy is Strategy.LOCKS
        # Register backends, then balance WAN traffic.
        heartbeats = [(0, pkt) for _, pkt in one_way_trace(generator, 0, 4, 8)]
        wan = one_way_trace(generator, port=1)
        report = check_equivalence(ALL_NFS["lb"], parallel, heartbeats + wan)
        assert report.equivalent, report.describe()

    def test_dbridge_under_locks(self, analyses, generator):
        parallel = analyses.maestro.parallelize(
            ALL_NFS["dbridge"](), n_cores=4, result=analyses["dbridge"]
        )
        report = check_equivalence(
            ALL_NFS["dbridge"], parallel, bidirectional_trace(generator)
        )
        assert report.equivalent, report.describe()

    def test_forced_locks_on_sharednothing_nf(self, analyses, generator):
        parallel = analyses.maestro.parallelize(
            ALL_NFS["fw"](), n_cores=4, result=analyses["fw"],
            strategy=Strategy.LOCKS,
        )
        report = check_equivalence(
            ALL_NFS["fw"], parallel, bidirectional_trace(generator)
        )
        assert report.equivalent, report.describe()


class TestCapacityDivergence:
    def test_shard_exhaustion_reported_not_failed(self, analyses, generator):
        """§4: a per-core shard can fill while the sequential table still
        has room; that is a documented, allowed divergence."""
        nf_factory = lambda: ALL_NFS["fw"](capacity=16)
        result = analyses.maestro.analyze(nf_factory())
        parallel = analyses.maestro.parallelize(
            nf_factory(), n_cores=8, result=result
        )
        trace, _ = generator.uniform_trace(200, 64, in_port=0)
        report = check_equivalence(nf_factory, parallel, trace)
        assert report.equivalent
        # With 2-entry shards vs a 16-entry global table, some flows that
        # fit sequentially cannot fit in their shard.
        assert report.capacity_divergences >= 0

    def test_repeat_packets_of_refused_flow_are_tainted_not_failed(
        self, analyses
    ):
        """Only the establishing packet raises ``new_flow``; repeat
        packets of a refused flow re-fail the allocator silently.  The
        flow taint must keep excusing them — rounds two and three below
        carry no ``new_flow`` on either side."""
        from repro.nf.packet import Packet

        nf_factory = lambda: ALL_NFS["nat"](capacity=8)
        result = analyses.maestro.analyze(nf_factory())
        parallel = analyses.maestro.parallelize(
            nf_factory(), n_cores=4, result=result
        )
        one_round = [
            (
                0,
                Packet(
                    src_ip=0x0A000000 + i, dst_ip=0x50000000,
                    src_port=1000 + i, dst_port=80,
                ),
            )
            for i in range(16)
        ]
        report = check_equivalence(
            nf_factory, parallel, one_round * 3, ignore_mods=("src_port",)
        )
        assert report.equivalent, report.describe()
        # 2-entry shards vs an 8-entry global chain: the two sides refuse
        # different flows, and each divergent flow diverges identically in
        # every round — all attributed to the allocator chain.
        divergences = report.capacity_by_object["nat_chain"]
        assert divergences == report.capacity_divergences
        assert divergences > 0 and divergences % 3 == 0

    def test_custom_flow_keys_scope_the_taint(self, analyses, generator):
        """``flow_keys`` with a state-object tag only taints keys whose
        tag matches the blamed object (prefix match on ``obj_…``)."""
        nf_factory = lambda: ALL_NFS["nat"](capacity=32)
        result = analyses.maestro.analyze(nf_factory())
        parallel = analyses.maestro.parallelize(
            nf_factory(), n_cores=8, result=result
        )
        trace, _ = generator.uniform_trace(300, 64, in_port=0)

        def keys(port, pkt):
            # "nat" prefix-matches the culprit "nat_chain".
            return [("nat", (pkt.src_ip, pkt.src_port, pkt.dst_ip,
                             pkt.dst_port))]

        report = check_equivalence(
            nf_factory, parallel, trace,
            ignore_mods=("src_port",), flow_keys=keys,
        )
        assert report.equivalent, report.describe()
        assert report.capacity_divergences > 0


class TestReportFormatting:
    """Satellite: describe() caps listings and names capacity culprits."""

    def test_describe_caps_mismatch_listing(self):
        from repro.sim.equivalence import (
            MISMATCH_DISPLAY_CAP,
            EquivalenceReport,
            Mismatch,
        )

        mismatches = [
            Mismatch(
                index=i, port=0, sequential=("seq",), parallel=("par",),
                capacity_related=False,
            )
            for i in range(12)
        ]
        report = EquivalenceReport(n_packets=100, mismatches=mismatches)
        text = report.describe()
        assert "12/100 packets diverge" in text
        assert f"... and {12 - MISMATCH_DISPLAY_CAP} more" in text
        # Only the capped prefix is listed, one line per mismatch.
        assert text.count("sequential=") == MISMATCH_DISPLAY_CAP

    def test_short_listing_is_not_capped(self):
        from repro.sim.equivalence import EquivalenceReport, Mismatch

        report = EquivalenceReport(
            n_packets=10,
            mismatches=[
                Mismatch(
                    index=3, port=1, sequential=("a",), parallel=("b",),
                    capacity_related=False,
                )
            ],
        )
        text = report.describe()
        assert "#3 (port 1)" in text
        assert "more" not in text

    def test_capacity_divergences_name_the_exhausted_object(
        self, analyses, generator
    ):
        """The NAT's allocator chain is what refuses a full shard's new
        flow; the report must say so, per divergence."""
        nf_factory = lambda: ALL_NFS["nat"](capacity=32)
        result = analyses.maestro.analyze(nf_factory())
        parallel = analyses.maestro.parallelize(
            nf_factory(), n_cores=8, result=result
        )
        trace, _ = generator.uniform_trace(300, 64, in_port=0)
        report = check_equivalence(
            nf_factory, parallel, trace, ignore_mods=("src_port",)
        )
        assert report.capacity_divergences > 0
        assert report.capacity_by_object == {
            "nat_chain": report.capacity_divergences
        }


class TestSanitizedEquivalence:
    """check_equivalence(sanitize=True): the race sanitizer rides along."""

    def test_clean_nf_attaches_no_diagnostics(self, analyses, generator):
        parallel = analyses.maestro.parallelize(
            ALL_NFS["fw"](), n_cores=4, result=analyses["fw"]
        )
        report = check_equivalence(
            ALL_NFS["fw"],
            parallel,
            bidirectional_trace(generator),
            sanitize=True,
            tree=analyses["fw"].tree,
        )
        assert report.equivalent, report.describe()
        assert report.race_diagnostics == []
        # Probes must not linger after the checked run.
        assert all(c.ctx.access_probe is None for c in parallel.cores)

    def test_race_surfaces_even_when_behaviour_matches(self):
        """The ISSUE's motivating gap: single-threaded replay can be
        observably equivalent while the plan still races."""
        from tests.analysis.test_race import (
            MisshardedNat,
            forged_client_sharding,
            many_clients_one_server,
            parallel_for_solution,
        )
        from repro.symbex.engine import explore_nf

        nf = MisshardedNat()
        parallel = parallel_for_solution(nf, forged_client_sharding(nf))
        report = check_equivalence(
            MisshardedNat,
            parallel,
            many_clients_one_server(),
            sanitize=True,
            tree=explore_nf(nf),
        )
        assert report.equivalent, report.describe()
        assert any(d.code == "MAE103" for d in report.race_diagnostics)
        assert "race sanitizer" in report.describe()
