"""§5: attacking state sharding, and the key-randomization defense."""

import numpy as np
import pytest

from repro.core import Maestro
from repro.nf.nfs import Firewall
from repro.sim.attack import evaluate_attack, find_colliding_flows


@pytest.fixture(scope="module")
def deployment():
    maestro = Maestro(seed=500)
    result = maestro.analyze(Firewall())
    parallel = maestro.parallelize(Firewall(), n_cores=8, result=result)
    return maestro, result, parallel


class TestAttack:
    def test_attacker_finds_colliding_flows(self, deployment):
        _, _, parallel = deployment
        attack = find_colliding_flows(
            parallel.rss.ports[0], 20, rng=np.random.default_rng(1)
        )
        assert len(attack) == 20
        # Collisions are ~1/512: the search needs thousands, not millions.
        assert attack.probes < 100_000

    def test_attack_concentrates_on_one_core(self, deployment):
        _, _, parallel = deployment
        attack = find_colliding_flows(
            parallel.rss.ports[0], 20, rng=np.random.default_rng(2)
        )
        outcome = evaluate_attack(parallel, attack)
        assert outcome.concentrated
        assert outcome.max_core_share == 1.0
        assert outcome.entries_hit == 1

    def test_rebalancing_cannot_split_the_attack(self, deployment):
        """'Colliding flows end up on the same entry within the RSS
        indirection table and thus cannot be split apart.'"""
        _, _, parallel = deployment
        attack = find_colliding_flows(
            parallel.rss.ports[0], 20, rng=np.random.default_rng(3)
        )
        sample = [(0, flow.packet()) for flow in attack.flows]
        parallel.rss.balance_tables(sample * 5)
        outcome = evaluate_attack(parallel, attack)
        assert outcome.cores_hit == 1  # moved, perhaps, but still together

    def test_shard_exhaustion(self, deployment):
        """The attack's payoff: the victim core's shard fills with far
        fewer flows than the sequential table would need."""
        maestro, result, _ = deployment
        small = Firewall(capacity=64)
        small_result = maestro.analyze(small)
        parallel = maestro.parallelize(small, n_cores=8, result=small_result)
        attack = find_colliding_flows(
            parallel.rss.ports[0], 16, rng=np.random.default_rng(4)
        )
        for flow in attack.flows:
            parallel.process(0, flow.packet())
        victim = parallel.core_for(0, attack.flows[0].packet())
        store = parallel.cores[victim].ctx.store
        # 8 entries per shard, 16 colliding flows: the shard is full.
        assert store["fw_chain"].allocated_count() == store["fw_chain"].capacity


class TestDefense:
    def test_fresh_key_disperses_attack(self, deployment):
        """Key randomization: the same attack set, replayed against a
        deployment whose keys were re-drawn (same constraints), spreads
        over many cores — the attacker must re-do the search per victim."""
        maestro, _, parallel = deployment
        attack = find_colliding_flows(
            parallel.rss.ports[0], 24, rng=np.random.default_rng(5)
        )
        assert evaluate_attack(parallel, attack).concentrated

        fresh_maestro = Maestro(seed=501)  # different key randomness
        fresh_result = fresh_maestro.analyze(Firewall())
        fresh = fresh_maestro.parallelize(
            Firewall(), n_cores=8, result=fresh_result
        )
        outcome = evaluate_attack(fresh, attack)
        assert not outcome.concentrated
        assert outcome.cores_hit >= 4
        assert outcome.max_core_share < 0.6

    def test_fresh_key_preserves_flow_symmetry(self, deployment):
        """The defense cannot break correctness: re-drawn keys still
        satisfy the sharding constraints (replies colocate)."""
        fresh_maestro = Maestro(seed=502)
        result = fresh_maestro.analyze(Firewall())
        parallel = fresh_maestro.parallelize(Firewall(), n_cores=8, result=result)
        rng = np.random.default_rng(6)
        from repro.nf.flow import FiveTuple

        for _ in range(100):
            flow = FiveTuple(
                int(rng.integers(1, 2**32)), int(rng.integers(1, 2**32)),
                int(rng.integers(1, 2**16)), int(rng.integers(1, 2**16)),
            )
            assert parallel.core_for(0, flow.packet()) == parallel.core_for(
                1, flow.inverted().packet()
            )
